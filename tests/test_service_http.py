"""End-to-end service tests: HTTP API, streaming, back-pressure, resume."""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro.service.jobs
from repro.service.app import ServiceConfig, ServiceThread, wait_until
from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import JobQueue
from repro.sim import runner

REPO_ROOT = Path(__file__).resolve().parent.parent

SMALL_SWEEP = {"kind": "sweep", "benchmarks": ["gcc"], "instructions": 4_000}


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    runner.clear_caches()
    yield tmp_path / "cache"
    runner.clear_caches()


def service_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        port=0,
        db_path=tmp_path / "jobs.sqlite",
        reports_dir=tmp_path / "reports",
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture
def service(tmp_path, isolated_cache):
    with ServiceThread(service_config(tmp_path)) as handle:
        yield handle


def raw_request(port, method, path, body=None, headers=None):
    """A raw HTTP exchange, for malformed bodies and header assertions."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        payload = response.read().decode("utf-8")
        return response.status, dict(response.getheaders()), payload
    finally:
        connection.close()


class TestHappyPath:
    def test_submit_stream_report_matches_cli(self, service, isolated_cache):
        client = ServiceClient(port=service.port)
        assert client.healthy()

        events = []
        text = client.submit_and_wait(SMALL_SWEEP, on_event=events.append,
                                      timeout=120)

        kinds = [event["event"] for event in events]
        assert kinds[0] == "snapshot"
        assert kinds[-1] == "done"
        runs = [event for event in events if event["event"] == "run"]
        assert [event["runs_done"] for event in runs] == [1, 2]
        assert all(event["sweep_total"] == 2 for event in runs)
        assert all("benchmark" in event and "seconds" in event for event in runs)

        process = subprocess.run(
            [sys.executable, "-m", "repro.cli", "sweep", "--benchmarks", "gcc",
             "--instructions", "4000", "--json"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin",
                 "REPRO_CACHE_DIR": str(isolated_cache)},
        )
        assert process.returncode == 0, process.stderr
        assert text + "\n" == process.stdout

    def test_duplicate_submission_coalesces(self, service):
        client = ServiceClient(port=service.port)
        first = client.submit(SMALL_SWEEP)
        assert not first["coalesced"]
        second = client.submit(SMALL_SWEEP)
        assert second["coalesced"]
        assert second["job"]["id"] == first["job"]["id"]

        client.wait(first["job"]["id"], timeout=120)
        # Resubmitting a finished job coalesces too — and is served warm.
        third = client.submit(SMALL_SWEEP)
        assert third["coalesced"] and third["job"]["state"] == "done"
        assert client.report_text(third["job"]["id"])

    def test_events_after_completion_are_a_terminal_snapshot(self, service):
        client = ServiceClient(port=service.port)
        job_id = client.submit(SMALL_SWEEP)["job"]["id"]
        client.wait(job_id, timeout=120)
        events = list(client.events(job_id))
        assert len(events) == 1
        assert events[0]["event"] == "snapshot"
        assert events[0]["job"]["state"] == "done"

    def test_jobs_listing_and_stats(self, service):
        client = ServiceClient(port=service.port)
        job_id = client.submit(SMALL_SWEEP)["job"]["id"]
        client.wait(job_id, timeout=120)
        listed = client.jobs()["jobs"]
        assert [job["id"] for job in listed] == [job_id]
        stats = client.stats()
        assert stats["queue"]["done"] == 1
        assert sum(stats["reports"].values()) == 1
        assert stats["run_cache"]["entries"] == 2  # point + baseline runs
        assert set(stats["artifacts"]) == {"loads", "stores", "files", "bytes"}
        assert stats["config"]["compact_after"] is None


class TestCompaction:
    def test_periodic_compaction_drops_finished_jobs(self, tmp_path,
                                                     isolated_cache):
        config = service_config(tmp_path, compact_after=0.2)
        with ServiceThread(config) as handle:
            client = ServiceClient(port=handle.port)
            job = client.submit(SMALL_SWEEP)["job"]
            job_id, fingerprint = job["id"], job["fingerprint"]
            client.wait(job_id, timeout=120)
            assert wait_until(
                lambda: client.jobs()["jobs"] == [], timeout=30.0
            ), "compactor never removed the finished job"
            with pytest.raises(ServiceError) as caught:
                client.job(job_id)
            assert caught.value.status == 404
            # Compaction drops queue history only: the report survives
            # in the sharded store and the runs in the result cache.
            assert handle.service.store.get(fingerprint) is not None
            assert client.stats()["config"]["compact_after"] == 0.2

    def test_compact_now_prunes_journals_with_rows(self, tmp_path,
                                                   isolated_cache):
        with ServiceThread(service_config(tmp_path)) as handle:
            client = ServiceClient(port=handle.port)
            job_id = client.submit(SMALL_SWEEP)["job"]["id"]
            client.wait(job_id, timeout=120)
            assert job_id in handle.service._journals
            # No horizon configured: compact_now treats it as "now".
            assert handle.service.compact_now() == [job_id]
            assert job_id not in handle.service._journals
            assert client.jobs()["jobs"] == []


class TestErrorPaths:
    def test_malformed_json_is_400(self, service):
        status, _, payload = raw_request(service.port, "POST", "/jobs",
                                         body=b"{not json")
        assert status == 400
        assert "invalid JSON body" in json.loads(payload)["error"]

    @pytest.mark.parametrize(
        "request_body, match",
        [
            ({"kind": "sweep", "bogus": 1}, "unknown field"),
            ({"kind": "sweep", "benchmarks": ["nope"]}, "unknown benchmark"),
            ({"kind": "nope"}, "unknown job kind"),
            ([1, 2, 3], "JSON object"),
        ],
    )
    def test_invalid_request_is_400_with_reason(self, service, request_body, match):
        client = ServiceClient(port=service.port)
        with pytest.raises(ServiceError) as caught:
            client.submit(request_body)
        assert caught.value.status == 400
        assert match in caught.value.reason

    def test_unknown_job_is_404(self, service):
        client = ServiceClient(port=service.port)
        for probe in (client.job, client.report_text,
                      lambda job_id: list(client.events(job_id))):
            with pytest.raises(ServiceError) as caught:
                probe("0" * 16)
            assert caught.value.status == 404

    def test_unknown_route_is_404_and_bad_method_is_405(self, service):
        status, _, _ = raw_request(service.port, "GET", "/nope")
        assert status == 404
        status, _, _ = raw_request(service.port, "DELETE", "/jobs")
        assert status == 405

    def test_oversized_body_is_413(self, tmp_path, isolated_cache):
        config = service_config(tmp_path, max_body_bytes=64)
        with ServiceThread(config) as handle:
            status, _, payload = raw_request(
                handle.port, "POST", "/jobs",
                body=json.dumps({"benchmarks": ["gcc"] * 100}).encode(),
            )
            assert status == 413
            assert "64 bytes" in json.loads(payload)["error"]

    def test_report_before_done_is_409(self, service, monkeypatch):
        release = threading.Event()

        def blocking(spec, jobs=1, progress=None):
            release.wait(timeout=30)
            raise RuntimeError("released")

        monkeypatch.setattr(repro.service.jobs, "execute_job", blocking)
        client = ServiceClient(port=service.port)
        job_id = client.submit(SMALL_SWEEP)["job"]["id"]
        try:
            with pytest.raises(ServiceError) as caught:
                client.report_text(job_id)
            assert caught.value.status == 409
            assert "not done" in caught.value.reason
        finally:
            release.set()

    def test_worker_exception_fails_job_with_detail(self, service, monkeypatch):
        def exploding(spec, jobs=1, progress=None):
            raise RuntimeError("simulation exploded mid-run")

        monkeypatch.setattr(repro.service.jobs, "execute_job", exploding)
        client = ServiceClient(port=service.port)
        job_id = client.submit(SMALL_SWEEP)["job"]["id"]
        final = client.wait(job_id, timeout=30)
        assert final["state"] == "failed"
        assert final["error"] == "RuntimeError: simulation exploded mid-run"

        with pytest.raises(ServiceError) as caught:
            client.report_text(job_id)
        assert caught.value.status == 409
        assert "simulation exploded" in caught.value.reason

        with pytest.raises(ServiceError) as caught:
            client.submit_and_wait(SMALL_SWEEP, timeout=30)
        assert caught.value.status == 500


class TestBackPressure:
    def test_rate_limit_is_429_with_retry_after(self, tmp_path, isolated_cache):
        config = service_config(tmp_path, rate=0.001, burst=1.0)
        with ServiceThread(config) as handle:
            client = ServiceClient(port=handle.port)
            client.submit(SMALL_SWEEP)  # consumes the only token
            with pytest.raises(ServiceError) as caught:
                client.submit(SMALL_SWEEP)
            assert caught.value.status == 429
            assert "rate limit" in caught.value.reason

            status, headers, _ = raw_request(
                handle.port, "POST", "/jobs", body=b"{}",
                headers={"Content-Type": "application/json"},
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1

            # Another tenant has its own bucket.
            other = ServiceClient(port=handle.port, tenant="team-b")
            assert other.submit(SMALL_SWEEP)["coalesced"]

    def test_full_queue_is_503(self, tmp_path, isolated_cache):
        config = service_config(tmp_path, max_queue=0)
        with ServiceThread(config) as handle:
            client = ServiceClient(port=handle.port)
            with pytest.raises(ServiceError) as caught:
                client.submit(SMALL_SWEEP)
            assert caught.value.status == 503
            assert "queue full" in caught.value.reason


class TestResume:
    def test_stop_midjob_requeues_and_new_service_finishes(
        self, tmp_path, isolated_cache
    ):
        started = threading.Event()
        release = threading.Event()

        def blocking(spec, jobs=1, progress=None):
            started.set()
            release.wait(timeout=30)
            raise RuntimeError("interrupted")

        # Patched by hand (not via monkeypatch) so it can be restored
        # mid-test without undoing the cache isolation env vars.
        original = repro.service.jobs.execute_job
        repro.service.jobs.execute_job = blocking
        first = ServiceThread(service_config(tmp_path)).start()
        try:
            client = ServiceClient(port=first.port)
            job_id = client.submit(SMALL_SWEEP)["job"]["id"]
            assert started.wait(timeout=30)
        finally:
            first.stop()  # worker cancelled mid-execution, like a crash
            release.set()
            repro.service.jobs.execute_job = original

        journal = JobQueue(tmp_path / "jobs.sqlite")
        assert journal.get(job_id).state == "running"  # left mid-flight
        journal.close()

        with ServiceThread(service_config(tmp_path)) as second:
            assert [job.id for job in second.service.recovered] == [job_id]
            client = ServiceClient(port=second.port)
            final = client.wait(job_id, timeout=120)
            assert final["state"] == "done"
            assert client.report_text(job_id)

    def test_completed_runs_resolve_from_cache_after_resume(
        self, tmp_path, isolated_cache
    ):
        # Warm exactly one of the job's runs, as if the first service
        # life completed it before dying: the resumed job must count it
        # as a cache hit rather than re-simulating.
        from repro.sim.config import SystemConfig

        runner.run_benchmark("gcc", SystemConfig(), 4_000)
        runner.clear_caches()  # keep only the disk entry, like a new process
        with ServiceThread(service_config(tmp_path)) as handle:
            client = ServiceClient(port=handle.port)
            job_id = client.submit(SMALL_SWEEP)["job"]["id"]
            final = client.wait(job_id, timeout=120)
            assert final["state"] == "done"
            assert final["runs_done"] == 2
            assert final["cache_hits"] == 1


@pytest.mark.slow
class TestServeSubprocess:
    def test_kill_and_restart_resumes_without_rerunning(self, tmp_path):
        """The acceptance path: SIGKILL the server mid-sweep, restart it,
        and watch the job finish with the pre-kill runs served from the
        shared disk cache."""
        env = {
            "PYTHONPATH": "src",
            "PATH": "/usr/bin:/bin",
            "REPRO_CACHE_DIR": str(tmp_path / "cache"),
        }
        argv = [
            sys.executable, "-m", "repro.cli", "serve", "--port", "0",
            "--db", str(tmp_path / "jobs.sqlite"),
            "--reports-dir", str(tmp_path / "reports"),
        ]

        def launch():
            process = subprocess.Popen(
                argv, cwd=REPO_ROOT, env=env,
                stdout=subprocess.PIPE, text=True,
            )
            banner = process.stdout.readline()
            assert banner.startswith("serving on http://"), banner
            return process, int(banner.rstrip().rsplit(":", 1)[1])

        request = {
            "kind": "sweep",
            "benchmarks": ["gcc", "swim"],
            "instructions": 30_000,  # ~0.5s/run: kill lands mid-sweep
        }
        server, port = launch()
        try:
            client = ServiceClient(port=port)
            job_id = client.submit(request)["job"]["id"]
            for event in client.events(job_id):
                if event["event"] == "run":  # first run done and cached
                    break
            os.kill(server.pid, signal.SIGKILL)
            server.wait(timeout=10)

            server, port = launch()
            client = ServiceClient(port=port)
            final = client.wait(job_id, timeout=180)
            assert final["state"] == "done"
            assert final["runs_done"] == 4
            assert final["cache_hits"] >= 1  # pre-kill work not repeated
            assert client.report_text(job_id)
        finally:
            server.kill()
            server.wait(timeout=10)


class TestWaitUntil:
    def test_wait_until_polls_predicate(self):
        flag = {"ready": False}

        def arm():
            time.sleep(0.05)
            flag["ready"] = True

        threading.Thread(target=arm).start()
        assert wait_until(lambda: flag["ready"], timeout=5.0)
        assert not wait_until(lambda: False, timeout=0.05)
