"""Differential property suite: fast backend == reference engine.

The fast backend's correctness contract is byte-identical results.
These properties drive Hypothesis-generated traces through both
backends — every d-cache policy kind and every i-cache policy kind in
the registry — and assert ``SimResult.to_flat()`` equality field for
field (integer counters, access-kind breakdowns, and energy floats
alike), plus :class:`MissRateResult` equality for the functional path
across every replacement policy and the warmup-fraction edges — with
the numpy vector tier held to the same byte-identical contract as a
third leg of the miss-rate property.

Full-sim mode is covered on both pipeline implementations: the fast
backend runs the batched core/fetch pair (:mod:`repro.fastsim.core`,
:mod:`repro.fastsim.fetch`), so every property here also pins the
cycle-exactness of the array-state scheduler, including under starved
core shapes (tiny ROB/LSQ, single-issue, one d-cache port) and down to
``CoreStats`` fields that never reach a ``SimResult``.

The Hypothesis profile is pinned deterministic in ``conftest.py``
(``derandomize=True``, ``deadline=None``) so this suite cannot flake
in CI.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.core.registry import iter_policies
from repro.cpu.config import CoreConfig
from repro.cpu.fetch import FetchUnit
from repro.cpu.ooo import OutOfOrderCore
from repro.cpu.stats import CoreStats
from repro.fastsim import FastCore, FastFetchUnit
from repro.fastsim.missrate import fast_miss_rate
from repro.fastsim.vector import vector_miss_rate
from repro.sim.config import CacheLevelConfig, SystemConfig
from repro.sim.functional import measure_miss_rate
from repro.sim.simulator import Simulator
from repro.workload.instr import (
    OP_BRANCH,
    OP_CALL,
    OP_FP,
    OP_INT,
    OP_LOAD,
    OP_RET,
    OP_STORE,
    Instr,
)
from repro.workload.trace import Trace

#: Registered policy kinds, resolved once at collection time.
DCACHE_KINDS = [info.kind for info in iter_policies("dcache")]
ICACHE_KINDS = [info.kind for info in iter_policies("icache")]

#: A small system so short traces still produce conflicts, evictions,
#: and mispredictions: 512B 4-way L1s over a 4K L2.
SMALL = SystemConfig(
    icache=CacheLevelConfig(1, 4, 32, 1),
    dcache=CacheLevelConfig(1, 4, 32, 1),
    l2=CacheLevelConfig(4, 4, 32, 6),
)


# ------------------------------------------------------------------ #
# Trace generation
# ------------------------------------------------------------------ #


@st.composite
def traces(draw) -> Trace:
    """A short, well-formed correct-path trace.

    Control flow is made self-consistent (taken branches continue at
    their targets, returns target the call site's successor when the
    call stack allows) so the fetch unit exercises its BTB/RAS/SAWP
    paths rather than stalling on every transfer.
    """
    length = draw(st.integers(min_value=30, max_value=150))
    ops = draw(
        st.lists(
            st.sampled_from(
                [OP_INT, OP_INT, OP_LOAD, OP_LOAD, OP_LOAD, OP_STORE,
                 OP_FP, OP_BRANCH, OP_BRANCH, OP_CALL, OP_RET]
            ),
            min_size=length,
            max_size=length,
        )
    )
    # A small pool of data blocks; reuse drives hits, aliasing drives
    # conflicts and way-prediction training.
    addr_pool = draw(
        st.lists(st.integers(min_value=0, max_value=0x7FF), min_size=3, max_size=12)
    )
    jump_pool = draw(
        st.lists(st.integers(min_value=0, max_value=0x3FF), min_size=2, max_size=8)
    )
    choices = draw(
        st.lists(st.integers(min_value=0, max_value=2 ** 30), min_size=length,
                 max_size=length)
    )

    instrs = []
    pc = 0x1000
    call_stack = []
    for i, op in enumerate(ops):
        pick = choices[i]
        if op == OP_LOAD or op == OP_STORE:
            addr = (addr_pool[pick % len(addr_pool)] << 3) | (pick % 32 & ~0x3)
            instrs.append(
                Instr(pc, op, dst=pick % 8 if op == OP_LOAD else -1,
                      src1=pick % 4, addr=addr,
                      xor_handle=(addr >> 5) ^ (pick % 16))
            )
            pc += 4
        elif op == OP_BRANCH:
            taken = pick % 2 == 1
            target = 0x1000 + (jump_pool[pick % len(jump_pool)] << 2)
            instrs.append(Instr(pc, OP_BRANCH, src1=pick % 8, taken=taken, target=target))
            pc = target if taken else pc + 4
        elif op == OP_CALL:
            target = 0x2000 + (jump_pool[pick % len(jump_pool)] << 2)
            call_stack.append(pc + 4)
            instrs.append(Instr(pc, OP_CALL, taken=True, target=target))
            pc = target
        elif op == OP_RET:
            if call_stack:
                target = call_stack.pop()
            else:
                target = 0x1000 + (jump_pool[pick % len(jump_pool)] << 2)
            instrs.append(Instr(pc, OP_RET, taken=True, target=target))
            pc = target
        else:
            instrs.append(Instr(pc, op, dst=pick % 8, src1=(pick >> 3) % 8,
                                src2=(pick >> 6) % 8))
            pc += 4
    return Trace("hypothesis", instrs)


def assert_backends_identical(config: SystemConfig, trace: Trace) -> None:
    """Run both backends over one trace; assert to_flat() equality."""
    reference = Simulator(config, backend="reference").run(trace).to_flat()
    fast = Simulator(config, backend="fast").run(trace).to_flat()
    mismatched = {
        key: (reference[key], fast[key])
        for key in reference
        if reference[key] != fast[key]
    }
    assert not mismatched, f"fast backend diverged on: {mismatched}"


# ------------------------------------------------------------------ #
# Full-simulation equivalence, every registered policy kind
# ------------------------------------------------------------------ #


@pytest.mark.parametrize("kind", DCACHE_KINDS)
@settings(max_examples=10)
@given(trace=traces())
def test_dcache_policy_kind_identical(kind, trace):
    """Every d-cache PolicyInfo: fast == reference, field for field."""
    assert_backends_identical(SMALL.with_dcache_policy(kind), trace)


@pytest.mark.parametrize("kind", ICACHE_KINDS)
@settings(max_examples=10)
@given(trace=traces())
def test_icache_policy_kind_identical(kind, trace):
    """Every i-cache PolicyInfo: fast == reference, field for field."""
    config = SMALL.with_icache_policy(kind).with_dcache_policy("seldm_waypred")
    assert_backends_identical(config, trace)


#: Core shapes that starve each pipeline structure in turn: the paper's
#: 8-wide default, a single-issue machine, a tiny ROB/LSQ window, a
#: one-port d-cache with slow FP, and a deep-redirect narrow fetch.
CORE_SHAPES = {
    "paper": CoreConfig(),
    "single_issue": CoreConfig(
        fetch_width=1, dispatch_width=1, issue_width=1, commit_width=1
    ),
    "tiny_window": CoreConfig(rob_size=4, lsq_size=2),
    "one_port_slow_fp": CoreConfig(dcache_ports=1, fp_latency=12, int_latency=2),
    "deep_redirect": CoreConfig(
        fetch_width=2,
        redirect_penalty=6,
        btb_entries=16,
        ras_depth=2,
        bimodal_entries=32,
        gshare_entries=32,
        history_bits=5,
        chooser_entries=32,
    ),
}


@pytest.mark.parametrize("shape", sorted(CORE_SHAPES))
@settings(max_examples=8)
@given(trace=traces())
def test_core_shapes_identical(shape, trace):
    """The fast core is cycle-exact under starved pipeline shapes too."""
    config = dataclasses.replace(
        SMALL.with_dcache_policy("seldm_waypred").with_icache_policy("waypred"),
        core=CORE_SHAPES[shape],
    )
    assert_backends_identical(config, trace)


@pytest.mark.parametrize("shape", ["paper", "tiny_window", "deep_redirect"])
@settings(max_examples=8)
@given(trace=traces())
def test_core_stats_identical(shape, trace):
    """Every CoreStats field matches — including the purely diagnostic
    ones (fetch/ROB/LSQ stall counters, RAS mispredicts, BTB misses)
    that never reach a SimResult and so escape to_flat() equality."""
    config = dataclasses.replace(
        SMALL.with_icache_policy("waypred"), core=CORE_SHAPES[shape]
    )

    def run_core(backend):
        simulator = Simulator(config, backend=backend)
        stats = CoreStats()
        if backend == "fast":
            fetch_unit = FastFetchUnit(trace, simulator.icache, config.core, stats)
            FastCore(config.core, fetch_unit, simulator.dcache, stats).run()
        else:
            fetch_unit = FetchUnit(trace, simulator.icache, config.core, stats)
            OutOfOrderCore(config.core, fetch_unit, simulator.dcache, stats).run()
        return stats

    reference, fast = run_core("reference"), run_core("fast")
    mismatched = {
        field.name: (getattr(reference, field.name), getattr(fast, field.name))
        for field in dataclasses.fields(CoreStats)
        if getattr(reference, field.name) != getattr(fast, field.name)
    }
    assert not mismatched, f"fast core stats diverged on: {mismatched}"


@pytest.mark.parametrize("replacement", ["lru", "fifo", "random", "plru"])
@settings(max_examples=6)
@given(trace=traces())
def test_replacement_policies_identical(replacement, trace):
    """The fast arrays replicate every replacement policy's victims."""
    config = SystemConfig(
        icache=CacheLevelConfig(1, 4, 32, 1),
        dcache=CacheLevelConfig(1, 4, 32, 1),
        l2=CacheLevelConfig(4, 4, 32, 6),
        replacement=replacement,
    ).with_dcache_policy("waypred_pc")
    assert_backends_identical(config, trace)


# ------------------------------------------------------------------ #
# Functional miss-rate equivalence, warmup edges included
# ------------------------------------------------------------------ #


@settings(max_examples=20)
@given(
    trace=traces(),
    warmup=st.sampled_from([0.0, 0.2, 0.5, 0.95, 0.999]),
    assoc=st.sampled_from([1, 2, 4]),
    replacement=st.sampled_from(["lru", "fifo", "random", "plru"]),
)
def test_miss_rate_identical(trace, warmup, assoc, replacement):
    """fast_miss_rate == vector_miss_rate == measure_miss_rate at
    every warmup fraction, including the 0.0 and near-1.0 edges.
    (Without numpy the vector tier transparently replays the python
    kernels, so this property holds on every install.)"""
    geometry = CacheGeometry(1024, assoc, 32)
    reference = measure_miss_rate(trace, geometry, replacement, warmup)
    fast = fast_miss_rate(trace, geometry, replacement, warmup)
    vector = vector_miss_rate(trace, geometry, replacement, warmup)
    assert reference == fast == vector


def test_miss_rate_rejects_bad_warmup():
    """Both backends reject out-of-range warmup fractions identically."""
    trace = Trace("t", [Instr(0x1000, OP_LOAD, addr=0x40)])
    geometry = CacheGeometry(1024, 2, 32)
    for warmup in (-0.1, 1.0, 1.5):
        with pytest.raises(ValueError):
            measure_miss_rate(trace, geometry, warmup_fraction=warmup)
        with pytest.raises(ValueError):
            fast_miss_rate(trace, geometry, warmup_fraction=warmup)
        with pytest.raises(ValueError):
            vector_miss_rate(trace, geometry, warmup_fraction=warmup)


@pytest.mark.parametrize("assoc", [1, 2])
def test_miss_rate_rejects_unknown_replacement(assoc):
    """Unknown replacement names raise on both backends — including the
    direct-mapped fast path, which never arbitrates replacement."""
    trace = Trace("t", [Instr(0x1000, OP_LOAD, addr=0x40)])
    geometry = CacheGeometry(1024, assoc, 32)
    with pytest.raises(ValueError, match="unknown replacement"):
        measure_miss_rate(trace, geometry, replacement="bogus")
    with pytest.raises(ValueError, match="unknown replacement"):
        fast_miss_rate(trace, geometry, replacement="bogus")
    with pytest.raises(ValueError, match="unknown replacement"):
        vector_miss_rate(trace, geometry, replacement="bogus")
