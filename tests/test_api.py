"""repro.api facade and structured-result round-trip tests."""

import json

import pytest

from repro.api import Machine, PolicySpec
from repro.sim.config import SystemConfig
from repro.sim.results import (
    CoreMetrics,
    EnergyMetrics,
    L1Metrics,
    L2Metrics,
    SimResult,
)
from repro.sim.runner import clear_caches, get_trace


@pytest.fixture(autouse=True)
def _isolate_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_caches()
    yield
    clear_caches()


class TestMachine:
    def test_default_is_paper_baseline(self):
        assert Machine.from_config().config == SystemConfig()

    def test_policy_override_by_kind_string(self):
        machine = Machine.from_config(dcache_policy="seldm_waypred",
                                      icache_policy="waypred")
        assert machine.config.dcache_policy.kind == "seldm_waypred"
        assert machine.config.icache_policy.kind == "waypred"

    def test_policy_override_by_spec(self):
        spec = PolicySpec.create("waypred_pc", table_entries=256)
        machine = Machine.from_config(dcache_policy=spec)
        assert machine.config.dcache_policy.get("table_entries") == 256

    def test_field_overrides(self):
        machine = Machine.from_config(memory_latency=120)
        assert machine.config.memory_latency == 120

    def test_run_benchmark_name_memoizes(self):
        machine = Machine.from_config()
        first = machine.run("gcc", instructions=3000)
        second = machine.run("gcc", instructions=3000)
        assert first is second  # cached-runner path

    def test_run_trace_object(self):
        trace = get_trace("gcc", 3000)
        result = Machine.from_config().run(trace)
        assert result.core.committed == 3000

    def test_run_matches_runner_path(self):
        machine = Machine.from_config(dcache_policy="sequential")
        via_trace = machine.run(get_trace("gcc", 3000))
        via_name = machine.run("gcc", instructions=3000, use_cache=False)
        assert json.dumps(via_trace.to_flat(), sort_keys=True) == json.dumps(
            via_name.to_flat(), sort_keys=True
        )

    def test_policies_listing(self):
        infos = Machine.policies()
        kinds = {(info.side, info.kind) for info in infos}
        assert ("dcache", "seldm_waypred") in kinds
        assert ("icache", "waypred") in kinds
        assert all(info.side == "dcache" for info in Machine.policies("dcache"))

    def test_repr_describes_config(self):
        assert "seldm_waypred" in repr(Machine.from_config(dcache_policy="seldm_waypred"))


class TestFlatRoundTrip:
    def _sample(self) -> SimResult:
        return SimResult(
            benchmark="gcc",
            config_key="k",
            core=CoreMetrics(instructions=10, cycles=20, committed=10,
                             branches=3, branch_mispredicts=1, fetch_cycles=5),
            dcache=L1Metrics(loads=4, stores=2, load_misses=1, misses=1,
                             predictions=3, correct_predictions=2,
                             second_probes=1, kinds={"parallel": 4}),
            icache=L1Metrics(loads=6, misses=1, kinds={"no_prediction": 6}),
            l2=L2Metrics(accesses=2, misses=1),
            energy=EnergyMetrics(components={"l1_dcache": 1.5},
                                 processor={"clock": 3.0}),
        )

    def test_round_trip_identity(self):
        result = self._sample()
        assert SimResult.from_flat(result.to_flat()) == result

    def test_round_trip_survives_json(self):
        result = self._sample()
        rebuilt = SimResult.from_flat(json.loads(json.dumps(result.to_flat())))
        assert rebuilt == result

    def test_flat_keys_match_schema(self):
        assert tuple(sorted(self._sample().to_flat())) == SimResult.flat_field_names()

    def test_from_flat_rejects_stale_schema(self):
        with pytest.raises(ValueError, match="does not match"):
            SimResult.from_flat({"benchmark": "gcc", "bogus": 1})

    def test_from_flat_rejects_extra_keys(self):
        flat = self._sample().to_flat()
        flat["extra"] = 1
        with pytest.raises(ValueError, match="does not match"):
            SimResult.from_flat(flat)

    def test_simulated_result_round_trips(self):
        result = Machine.from_config(dcache_policy="seldm_waypred").run(
            "gcc", instructions=3000
        )
        assert SimResult.from_flat(result.to_flat()) == result
