"""Branch predictors, BTB, RAS, and prediction-table tests."""

import pytest
from hypothesis import given, strategies as st

from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.btb import BranchTargetBuffer
from repro.predictors.gshare import GsharePredictor
from repro.predictors.hybrid import HybridPredictor
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.table import CounterTable, WayPredictionTable
from repro.predictors.twobit import SaturatingCounter


class TestSaturatingCounter:
    def test_saturates_high(self):
        c = SaturatingCounter(2, initial=3)
        c.increment()
        assert c.value == 3

    def test_saturates_low(self):
        c = SaturatingCounter(2, initial=0)
        c.decrement()
        assert c.value == 0

    def test_msb_threshold(self):
        # 2-bit counter: 0,1 -> clear; 2,3 -> set (the paper's DM/SA flag).
        values = [SaturatingCounter(2, initial=v).msb_set for v in range(4)]
        assert values == [False, False, True, True]

    def test_train(self):
        c = SaturatingCounter(2, initial=1)
        c.train(True)
        assert c.value == 2
        c.train(False)
        assert c.value == 1

    def test_rejects_bad_init(self):
        with pytest.raises(ValueError):
            SaturatingCounter(2, initial=4)
        with pytest.raises(ValueError):
            SaturatingCounter(0)


class TestBimodal:
    def test_learns_bias(self):
        p = BimodalPredictor(64)
        for _ in range(10):
            p.train(0x400, True)
        assert p.predict(0x400)
        for _ in range(10):
            p.train(0x400, False)
        assert not p.predict(0x400)

    def test_distinct_pcs_independent(self):
        p = BimodalPredictor(64)
        for _ in range(10):
            p.train(0x400, True)
            p.train(0x404, False)
        assert p.predict(0x400)
        assert not p.predict(0x404)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(100)


class TestGshare:
    def test_learns_alternating_pattern(self):
        """Bimodal cannot learn T,N,T,N...; gshare can via history."""
        g = GsharePredictor(1024, 8)
        outcomes = [bool(i % 2) for i in range(400)]
        correct = 0
        for outcome in outcomes:
            if g.predict(0x500) == outcome:
                correct += 1
            g.train(0x500, outcome)
        # After warmup the pattern is fully predictable.
        assert correct > 300

    def test_history_shifts(self):
        g = GsharePredictor(256, 4)
        g.update_history(True)
        g.update_history(False)
        assert g.history == 0b10


class TestHybrid:
    def test_beats_components_on_mixed_workload(self):
        """Biased branches suit bimodal; patterned ones suit gshare; the
        hybrid should handle both at once."""
        h = HybridPredictor(256, 1024, 8, 256)
        correct = 0
        total = 2000
        for i in range(total):
            # pc A: strongly biased taken; pc B: period-2 pattern.
            for pc, outcome in ((0x100, True), (0x200, bool(i % 2))):
                if h.predict(pc) == outcome:
                    correct += 1
                h.train(pc, outcome)
        assert correct / (2 * total) > 0.9

    def test_accuracy_property(self):
        h = HybridPredictor(64, 64, 4, 64)
        for _ in range(50):
            h.train(0x40, True)
        assert 0.0 <= h.accuracy <= 1.0
        assert h.lookups == 50


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64)
        assert btb.lookup(0x400) is None
        btb.update(0x400, 0x900, way=2)
        entry = btb.lookup(0x400)
        assert entry is not None
        assert entry.target == 0x900
        assert entry.way == 2

    def test_tag_conflict_evicts(self):
        btb = BranchTargetBuffer(16)
        btb.update(0x400, 0x900)
        conflicting = 0x400 + 16 * 4  # same index, different tag
        btb.update(conflicting, 0xA00)
        assert btb.lookup(0x400) is None
        assert btb.lookup(conflicting).target == 0xA00

    def test_update_way_requires_match(self):
        btb = BranchTargetBuffer(16)
        btb.update(0x400, 0x900)
        btb.update_way(0x400, 3)
        assert btb.lookup(0x400).way == 3
        btb.update_way(0x404, 1)  # different pc: no entry, no crash
        assert btb.lookup(0x404) is None

    def test_hit_rate(self):
        btb = BranchTargetBuffer(16)
        btb.update(0x400, 0x900)
        btb.lookup(0x400)
        btb.lookup(0x800)
        assert btb.hit_rate == pytest.approx(0.5)


class TestRas:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100, 1)
        ras.push(0x200, 2)
        assert ras.pop() == (0x200, 2)
        assert ras.pop() == (0x100, 1)

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1, None)
        ras.push(2, None)
        ras.push(3, None)
        assert ras.pop()[0] == 3
        assert ras.pop()[0] == 2
        assert ras.pop() is None

    def test_update_top_way(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100, None)
        ras.update_top_way(2)
        assert ras.pop() == (0x100, 2)

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=40))
    def test_len_bounded_by_depth(self, pushes):
        ras = ReturnAddressStack(8)
        for value in pushes:
            ras.push(value)
        assert len(ras) <= 8


class TestWayPredictionTable:
    def test_cold_entry_returns_none(self):
        table = WayPredictionTable(64)
        assert table.predict(10) is None

    def test_train_then_predict(self):
        table = WayPredictionTable(64)
        assert table.train(10, 3)
        assert table.predict(10) == 3

    def test_retrain_same_way_is_free(self):
        """Unchanged entries are not physical writes (energy model)."""
        table = WayPredictionTable(64)
        assert table.train(10, 3)
        assert not table.train(10, 3)
        assert table.writes == 1

    def test_aliasing(self):
        """Untagged table: handles that collide share an entry (the
        reason bigger tables don't help PC prediction, section 4.2)."""
        table = WayPredictionTable(64)
        table.train(1, 2)
        assert table.predict(1 + 64) == 2


class TestCounterTable:
    def test_msb_thresholds(self):
        table = CounterTable(64, bits=2, initial=0)
        assert not table.msb_set(5)
        table.increment(5)
        assert not table.msb_set(5)  # value 1: still DM
        table.increment(5)
        assert table.msb_set(5)  # value 2: SA

    def test_saturation_writes_are_free(self):
        table = CounterTable(64, bits=2, initial=0)
        assert not table.decrement(5)  # already 0
        assert table.writes == 0
        table.increment(5)
        table.increment(5)
        table.increment(5)
        assert not table.increment(5)  # saturated at 3
        assert table.writes == 3

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            CounterTable(100)
        with pytest.raises(ValueError):
            CounterTable(64, bits=0)
        with pytest.raises(ValueError):
            CounterTable(64, bits=2, initial=9)
