"""Selective direct-mapping mechanics: victim list, mapping counters,
placement, and the engine-level behaviour of section 2.2.2."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.kinds import KIND_DIRECT_MAPPED, KIND_MISPREDICTED
from repro.core.selective_dm import SelectiveDmPolicy, VictimList
from repro.core.policy import MODE_PARALLEL, MODE_SEQUENTIAL, MODE_SINGLE

from tests.test_policies import make_engine


class TestVictimList:
    def test_below_threshold_not_conflicting(self):
        victims = VictimList(16, conflict_threshold=2)
        victims.record_eviction(0x10)
        victims.record_eviction(0x10)
        assert not victims.is_conflicting(0x10)  # count == 2, needs > 2

    def test_exceeding_threshold_flags(self):
        victims = VictimList(16, conflict_threshold=2)
        for _ in range(3):
            victims.record_eviction(0x10)
        assert victims.is_conflicting(0x10)

    def test_lru_replacement_of_entries(self):
        victims = VictimList(2)
        victims.record_eviction(1)
        victims.record_eviction(2)
        victims.record_eviction(3)  # evicts entry 1
        assert victims.eviction_count(1) == 0
        assert victims.eviction_count(2) == 1

    def test_increment_refreshes_recency(self):
        victims = VictimList(2)
        victims.record_eviction(1)
        victims.record_eviction(2)
        victims.record_eviction(1)  # refresh 1
        victims.record_eviction(3)  # evicts 2, not 1
        assert victims.eviction_count(1) == 2
        assert victims.eviction_count(2) == 0

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            VictimList(0)


class TestMappingPrediction:
    def setup_method(self):
        self.policy = SelectiveDmPolicy(conflict_handler="parallel")
        self.fields = CacheGeometry(16 * 1024, 4, 32).fields

    def test_default_is_direct_mapped(self):
        plan = self.policy.plan_load(0x40, 0x1000, 0)
        assert plan.mode == MODE_SINGLE
        assert plan.kind == KIND_DIRECT_MAPPED

    def test_sa_hits_flip_counter(self):
        addr = 0x1000
        dm_way = self.fields.direct_mapped_way(addr)
        other_way = (dm_way + 1) % 4
        plan = self.policy.plan_load(0x40, addr, 0)
        # Two hits found in a set-associative way flip the 2-bit counter.
        for _ in range(2):
            self.policy.observe_load(0x40, addr, 0, plan, other_way, other_way, dm_way)
        plan = self.policy.plan_load(0x40, addr, 0)
        assert plan.mode == MODE_PARALLEL

    def test_dm_hits_flip_back(self):
        addr = 0x1000
        dm_way = self.fields.direct_mapped_way(addr)
        other = (dm_way + 1) % 4
        plan = self.policy.plan_load(0x40, addr, 0)
        for _ in range(2):
            self.policy.observe_load(0x40, addr, 0, plan, other, other, dm_way)
        for _ in range(2):
            self.policy.observe_load(0x40, addr, 0, plan, dm_way, dm_way, dm_way)
        assert self.policy.plan_load(0x40, addr, 0).mode == MODE_SINGLE

    def test_handlers(self):
        sequential = SelectiveDmPolicy(conflict_handler="sequential")
        handle = 0x40 >> 2
        sequential.mapping_table.increment(handle)
        sequential.mapping_table.increment(handle)
        assert sequential.plan_load(0x40, 0x1000, 0).mode == MODE_SEQUENTIAL

    def test_waypred_handler_uses_way_table(self):
        policy = SelectiveDmPolicy(conflict_handler="waypred")
        handle = 0x40 >> 2
        policy.mapping_table.increment(handle)
        policy.mapping_table.increment(handle)
        # Cold way table: parallel fallback.
        assert policy.plan_load(0x40, 0x1000, 0).mode == MODE_PARALLEL
        policy.way_table.train(handle, 2)
        plan = policy.plan_load(0x40, 0x1000, 0)
        assert plan.mode == MODE_SINGLE and plan.way == 2

    def test_rejects_unknown_handler(self):
        with pytest.raises(ValueError):
            SelectiveDmPolicy(conflict_handler="magic")


class TestPlacement:
    def test_non_conflicting_placed_in_dm_way(self):
        policy = SelectiveDmPolicy()
        fields = CacheGeometry(16 * 1024, 4, 32).fields
        addr = 0xABC123
        way, dm_placed = policy.placement_way(addr, fields)
        assert dm_placed
        assert way == fields.direct_mapped_way(addr)

    def test_conflicting_placed_set_associatively(self):
        policy = SelectiveDmPolicy()
        fields = CacheGeometry(16 * 1024, 4, 32).fields
        block = 0xABC123 >> 5
        for _ in range(3):
            policy.on_eviction(block)
        way, dm_placed = policy.placement_way(0xABC123, fields)
        assert not dm_placed
        assert way is None


class TestSelectiveDmEngine:
    def test_dm_probe_hit(self):
        engine = make_engine("seldm_parallel")
        engine.load(0x40, 0x100)
        outcome = engine.load(0x40, 0x100)
        assert outcome.hit and outcome.latency == 1
        assert outcome.kind == KIND_DIRECT_MAPPED

    def test_dm_block_lands_in_dm_way(self):
        engine = make_engine("seldm_parallel")
        addr = 0x1400
        engine.load(0x40, addr)
        assert engine.array.way_of(addr) == engine.fields.direct_mapped_way(addr)
        assert engine.array.block_at(addr).dm_placed

    def test_conflict_thrash_detected_and_resolved(self):
        """Two hot blocks sharing a DM position must end up coexisting
        set-associatively after the victim list flags them."""
        engine = make_engine("seldm_parallel")
        fields = engine.fields
        # Two addresses: same index, same DM way, different tags.
        a = 0x100
        n_sets = engine.geometry.num_sets
        b = a + n_sets * 32 * engine.geometry.associativity  # same dm position
        assert fields.direct_mapped_way(a) == fields.direct_mapped_way(b)
        assert fields.index(a) == fields.index(b)
        for _ in range(40):
            engine.load(0x40, a)
            engine.load(0x44, b)
        # Steady state: both resident simultaneously.
        assert engine.array.contains(a)
        assert engine.array.contains(b)

    def test_mispredicted_as_dm_counts(self):
        engine = make_engine("seldm_parallel")
        fields = engine.fields
        a = 0x100
        b = a + engine.geometry.num_sets * 32 * engine.geometry.associativity
        for _ in range(40):
            engine.load(0x40, a)
            engine.load(0x44, b)
        assert engine.stats.access_kinds.get(KIND_MISPREDICTED, 0) >= 1

    def test_victim_energy_charged(self):
        engine = make_engine("seldm_waypred")
        engine.load(0x40, 0x100)
        assert engine.ledger.get("prediction_dcache") > 0
