"""Out-of-order core and simulator integration tests."""

import pytest

from repro.cpu.config import CoreConfig
from repro.sim.config import CacheLevelConfig, SystemConfig
from repro.sim.results import (
    performance_degradation,
    relative_energy,
    relative_energy_delay,
)
from repro.sim.runner import clear_caches, get_trace, run_benchmark
from repro.sim.simulator import Simulator


N = 12_000


@pytest.fixture(autouse=True)
def _isolate_caches():
    clear_caches()
    yield


class TestCoreConfig:
    def test_defaults_match_table1(self):
        config = CoreConfig()
        assert config.issue_width == 8
        assert config.rob_size == 64
        assert config.lsq_size == 32
        assert config.dcache_ports == 2

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            CoreConfig(rob_size=0)


class TestSystemConfig:
    def test_key_stable_and_distinct(self):
        a, b = SystemConfig(), SystemConfig()
        assert a.key() == b.key()
        assert a.key() != a.with_dcache_policy("sequential").key()

    def test_with_helpers(self):
        config = SystemConfig().with_dcache(size_kb=32).with_icache(associativity=8)
        assert config.dcache.size_kb == 32
        assert config.icache.associativity == 8

    def test_cache_level_geometry(self):
        geometry = CacheLevelConfig(16, 4, 32, 1).geometry()
        assert geometry.num_sets == 128

    def test_describe(self):
        assert "parallel" in SystemConfig().describe()


class TestSimulatorRuns:
    def test_all_instructions_commit(self):
        result = Simulator(SystemConfig()).run(get_trace("gcc", N))
        assert result.core.committed == N
        assert result.cycles > 0

    def test_ipc_sane(self):
        result = Simulator(SystemConfig()).run(get_trace("gcc", N))
        assert 0.2 < result.ipc < 8.0

    def test_deterministic(self):
        a = Simulator(SystemConfig()).run(get_trace("gcc", N))
        b = Simulator(SystemConfig()).run(get_trace("gcc", N))
        assert a.cycles == b.cycles
        assert a.energy == b.energy

    def test_energy_components_present(self):
        result = Simulator(SystemConfig()).run(get_trace("gcc", N))
        assert result.energy.components["l1_dcache"] > 0
        assert result.energy.components["l1_icache"] > 0
        assert result.energy.components["l2"] > 0
        assert result.energy.processor_total > result.energy.components["l1_dcache"]

    def test_memory_accounting_consistent(self):
        result = Simulator(SystemConfig()).run(get_trace("gcc", N))
        summary = get_trace("gcc", N).summary()
        assert result.dcache.loads == summary.loads
        assert result.dcache.stores == summary.stores

    def test_sequential_slower_than_parallel(self):
        base = Simulator(SystemConfig()).run(get_trace("gcc", N))
        seq = Simulator(SystemConfig().with_dcache_policy("sequential")).run(
            get_trace("gcc", N)
        )
        assert seq.cycles >= base.cycles
        assert seq.energy.dcache < base.energy.dcache

    def test_oracle_saves_energy_no_slowdown(self):
        base = Simulator(SystemConfig()).run(get_trace("gcc", N))
        oracle = Simulator(SystemConfig().with_dcache_policy("oracle")).run(
            get_trace("gcc", N)
        )
        assert oracle.cycles == base.cycles
        assert oracle.energy.dcache < 0.5 * base.energy.dcache

    def test_icache_waypred_saves_energy(self):
        base = Simulator(SystemConfig()).run(get_trace("gcc", N))
        tech = Simulator(SystemConfig().with_icache_policy("waypred")).run(
            get_trace("gcc", N)
        )
        assert tech.energy.icache < base.energy.icache

    def test_two_cycle_dcache_slower(self):
        base = Simulator(SystemConfig()).run(get_trace("gcc", N))
        slow = Simulator(SystemConfig().with_dcache(latency=2)).run(get_trace("gcc", N))
        assert slow.cycles > base.cycles

    def test_cache_fraction_in_band(self):
        result = Simulator(SystemConfig()).run(get_trace("gcc", N))
        assert 0.05 < result.energy.cache_fraction_of_processor < 0.25


class TestRelativeMetrics:
    def test_identity(self):
        result = Simulator(SystemConfig()).run(get_trace("gcc", N))
        assert relative_energy_delay(result, result, "dcache") == pytest.approx(1.0)
        assert performance_degradation(result, result) == pytest.approx(0.0)
        assert relative_energy(result, result) == pytest.approx(1.0)

    def test_components(self):
        result = Simulator(SystemConfig()).run(get_trace("gcc", N))
        for component in ("dcache", "icache", "processor"):
            assert relative_energy_delay(result, result, component) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            relative_energy_delay(result, result, "tlb")


class TestRunnerCaching:
    def test_memoizes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = run_benchmark("li", SystemConfig(), 4000)
        second = run_benchmark("li", SystemConfig(), 4000)
        assert first is second  # in-memory hit

    def test_disk_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = run_benchmark("li", SystemConfig(), 4000)
        clear_caches()
        second = run_benchmark("li", SystemConfig(), 4000)
        assert first is not second
        assert first.cycles == second.cycles

    def test_disk_cache_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        run_benchmark("li", SystemConfig(), 4000)
        assert not list(tmp_path.glob("*.json"))

    def test_use_cache_false_bypasses(self):
        first = run_benchmark("li", SystemConfig(), 4000, use_cache=False)
        second = run_benchmark("li", SystemConfig(), 4000, use_cache=False)
        assert first is not second
        assert first.cycles == second.cycles
