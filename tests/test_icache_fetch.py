"""I-cache way prediction and fetch-unit tests (section 2.3)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import L2Cache, MemoryHierarchy
from repro.core.icache import (
    ICacheEngine,
    SOURCE_BTB,
    SOURCE_NONE,
    SOURCE_RAS,
    SOURCE_SAWP,
)
from repro.core.icache_policy import (
    IFetchWayPredictor,
    ParallelFetchPolicy,
    WayPredictedFetchPolicy,
)
from repro.core.kinds import (
    KIND_BTB_CORRECT,
    KIND_MISPREDICTED,
    KIND_NO_PREDICTION,
    KIND_PARALLEL,
    KIND_SAWP_CORRECT,
)
from repro.cpu.config import CoreConfig
from repro.cpu.fetch import FetchUnit
from repro.cpu.stats import CoreStats
from repro.energy.cactilite import CactiLite
from repro.energy.ledger import EnergyLedger
from repro.energy.tables import PredictionStructureEnergy
from repro.workload.generator import generate_trace


def make_icache(way_predict=True, geometry=None):
    geometry = geometry or CacheGeometry(1024, 4, 32)
    l2 = L2Cache(CacheGeometry(64 * 1024, 8, 32))
    policy = WayPredictedFetchPolicy() if way_predict else ParallelFetchPolicy()
    return ICacheEngine(
        geometry=geometry,
        hierarchy=MemoryHierarchy(l2),
        energy=CactiLite().energy_model(geometry),
        pred_energy=PredictionStructureEnergy.build(),
        ledger=EnergyLedger(),
        policy=policy,
    )


class TestICacheEngine:
    def test_parallel_baseline_kind(self):
        icache = make_icache(way_predict=False)
        icache.fetch(0x400, None, SOURCE_NONE)
        assert icache.stats.access_kinds[KIND_PARALLEL] == 1

    def test_no_prediction_defaults_to_parallel_energy(self):
        icache = make_icache()
        icache.fetch(0x400, None, SOURCE_NONE)
        icache.fetch(0x400, None, SOURCE_NONE)
        # Second access: hit with parallel energy.
        assert icache.stats.access_kinds[KIND_NO_PREDICTION] == 2
        assert icache.stats.data_way_reads >= icache.geometry.associativity

    def test_correct_prediction_single_way(self):
        icache = make_icache()
        outcome = icache.fetch(0x400, None, SOURCE_NONE)  # miss, fills
        before = icache.ledger.get("l1_icache")
        hit = icache.fetch(0x400, outcome.way, SOURCE_SAWP)
        assert hit.latency == 1
        assert hit.kind == KIND_SAWP_CORRECT
        assert icache.ledger.get("l1_icache") - before == pytest.approx(
            icache.energy.one_way_read()
        )

    def test_btb_and_ras_grouped(self):
        icache = make_icache()
        outcome = icache.fetch(0x400, None, SOURCE_NONE)
        assert icache.fetch(0x400, outcome.way, SOURCE_BTB).kind == KIND_BTB_CORRECT
        assert icache.fetch(0x400, outcome.way, SOURCE_RAS).kind == KIND_BTB_CORRECT

    def test_mispredict_second_probe(self):
        icache = make_icache()
        outcome = icache.fetch(0x400, None, SOURCE_NONE)
        wrong = (outcome.way + 1) % 4
        bad = icache.fetch(0x400, wrong, SOURCE_SAWP)
        assert bad.kind == KIND_MISPREDICTED
        assert bad.latency == 2
        assert icache.stats.second_probes == 1

    def test_way_of_is_quiet(self):
        icache = make_icache()
        icache.fetch(0x400, None, SOURCE_NONE)
        before = icache.ledger.total()
        assert icache.way_of(0x400) is not None
        assert icache.ledger.total() == before


class TestIFetchWayPredictor:
    def test_cold_sawp_no_prediction(self):
        predictor = IFetchWayPredictor()
        assert predictor.predict_sequential(0x400) is None

    def test_train_then_predict(self):
        predictor = IFetchWayPredictor()
        predictor.train_sequential(0x400, 2)
        assert predictor.predict_sequential(0x400) == 2


class TestFetchUnit:
    def _run_fetch(self, way_predict=True, n=4000, bench="gcc"):
        trace = generate_trace(bench, n)
        icache = make_icache(
            way_predict=way_predict, geometry=CacheGeometry(16 * 1024, 4, 32)
        )
        stats = CoreStats()
        unit = FetchUnit(trace, icache, CoreConfig(), stats)
        cycle = 0
        fetched = 0
        while not unit.done and cycle < 100_000:
            group = unit.fetch(cycle)
            fetched += len(group)
            for item in group:
                if item.resolves_stall:
                    unit.resume(cycle + 6)
            cycle += 1
        return trace, icache, stats, fetched

    def test_fetches_whole_trace(self):
        trace, _, stats, fetched = self._run_fetch()
        assert fetched == len(trace)
        assert stats.fetched == len(trace)

    def test_branch_prediction_trains(self):
        _, _, stats, _ = self._run_fetch()
        assert stats.branches > 0
        assert stats.branch_mispredicts < stats.branches

    def test_way_prediction_covers_most_fetches(self):
        _, icache, _, _ = self._run_fetch()
        kinds = icache.stats.access_kinds
        predicted = kinds.get(KIND_SAWP_CORRECT, 0) + kinds.get(KIND_BTB_CORRECT, 0)
        total = sum(kinds.values())
        assert predicted / total > 0.6

    def test_parallel_mode_never_predicts(self):
        _, icache, _, _ = self._run_fetch(way_predict=False)
        assert icache.stats.predictions == 0
        assert set(icache.stats.access_kinds) == {KIND_PARALLEL}

    def test_sawp_dominates_for_fp_code(self):
        """Long basic blocks (fp profile) lean on the SAWP (Figure 10)."""
        _, icache, _, _ = self._run_fetch(bench="mgrid")
        kinds = icache.stats.access_kinds
        total = sum(kinds.values())
        assert kinds.get(KIND_SAWP_CORRECT, 0) / total > 0.5

    def test_icache_energy_lower_with_prediction(self):
        _, icache_wp, _, _ = self._run_fetch(way_predict=True)
        _, icache_par, _, _ = self._run_fetch(way_predict=False)
        assert icache_wp.ledger.get("l1_icache") < icache_par.ledger.get("l1_icache")
