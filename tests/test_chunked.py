"""Chunk-parallel replay suite: planner, merge, report, cache key, CLI.

The chunked-replay contract is the serial miss-rate contract plus one
clause: under the default full-prefix warmup overlap, summing per-chunk
counters reproduces the serial counters *byte-identically* on every
kernel tier and every replacement policy.  A Hypothesis property pins
that clause across random traces x policies x associativities x chunk
counts, and plain parametrized tests cover the planner arithmetic, the
degenerate-trace contract (zero measured accesses -> miss_rate 0.0 on
all tiers), the error-bound report, the v7 cache-key discipline, and
the ``trace run --chunks`` CLI surface (report on stderr, ``--json``
stdout unchanged).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cli import main
from repro.fastsim.missrate import fast_miss_rate_window
from repro.fastsim.vector import vector_miss_rate_window
from repro.sim import runner
from repro.sim.config import SystemConfig
from repro.sim.functional import (
    MissRateResult,
    measure_miss_rate,
    measure_miss_rate_window,
    merge_miss_rates,
    trace_mem_ops,
)
from repro.workload.instr import OP_INT, OP_LOAD, OP_STORE, Instr
from repro.workload.trace import Trace, plan_chunks

DATA_DIR = Path(__file__).parent / "data"
SAMPLE = DATA_DIR / "sample.din"

BACKENDS = ("reference", "fast", "vector")

WINDOW_MEASURES = {
    "reference": measure_miss_rate_window,
    "fast": fast_miss_rate_window,
    "vector": vector_miss_rate_window,
}


@pytest.fixture
def no_cache(monkeypatch):
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    runner.clear_caches()
    yield
    runner.clear_caches()


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    runner.clear_caches()
    yield tmp_path
    runner.clear_caches()


def mem_trace(name: str, spec) -> Trace:
    """A trace from (op, addr) pairs; non-memory ops carry addr=0."""
    instrs = []
    pc = 0x1000
    for op, addr in spec:
        instrs.append(Instr(pc, op, addr=addr))
        pc += 4
    return Trace(name, instrs)


def chunked_counters(trace, geometry, replacement, tier, chunks, overlap=None):
    """Plan + window-replay + merge, straight through the primitives."""
    total = len(trace_mem_ops(trace)[0])
    plan = plan_chunks(total, chunks, overlap)
    warmup = int(total * 0.2)
    parts = [
        WINDOW_MEASURES[tier](
            trace, geometry, replacement,
            replay_start=region.warmup_start,
            count_start=max(region.start, warmup),
            end=region.end,
        )
        for region in plan.regions
    ]
    return merge_miss_rates(parts)


# ------------------------------------------------------------------ #
# Planner arithmetic
# ------------------------------------------------------------------ #


class TestPlanChunks:
    def test_regions_tile_the_stream(self):
        plan = plan_chunks(100, 7)
        assert plan.regions[0].start == 0
        assert plan.regions[-1].end == 100
        for left, right in zip(plan.regions, plan.regions[1:]):
            assert left.end == right.start

    def test_full_prefix_overlap_replays_from_zero(self):
        plan = plan_chunks(100, 4, overlap=None)
        assert all(region.warmup_start == 0 for region in plan.regions)

    def test_finite_overlap_clamped_at_stream_start(self):
        plan = plan_chunks(100, 4, overlap=10)
        assert plan.regions[0].warmup_start == 0  # 0 - 10 clamps
        assert plan.regions[1].warmup_start == plan.regions[1].start - 10
        assert all(region.overlap <= 10 for region in plan.regions)

    def test_chunks_clamped_to_total(self):
        plan = plan_chunks(3, 10)
        assert plan.chunks == 3
        assert all(region.owned == 1 for region in plan.regions)

    def test_zero_total_yields_empty_plan(self):
        plan = plan_chunks(0, 4)
        assert plan.regions == ()
        assert merge_miss_rates([]).accesses == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="chunks"):
            plan_chunks(10, 0)
        with pytest.raises(ValueError, match="overlap"):
            plan_chunks(10, 2, overlap=-1)

    def test_document_names_boundaries(self):
        document = plan_chunks(10, 2, overlap=3).to_document()
        assert document["chunks"] == 2
        assert document["overlap"] == 3
        assert document["boundaries"] == [0, 5, 10]
        assert plan_chunks(10, 2).to_document()["overlap"] == "full"


# ------------------------------------------------------------------ #
# Window-replay primitives
# ------------------------------------------------------------------ #


class TestWindowPrimitives:
    @pytest.mark.parametrize("tier", BACKENDS)
    def test_serial_window_equals_measure(self, tier):
        trace = mem_trace(
            "w", [(OP_LOAD, (i * 96) % 1024) for i in range(400)]
        )
        geometry = CacheGeometry(512, 2, 32)
        serial = measure_miss_rate(trace, geometry)
        window = WINDOW_MEASURES[tier](
            trace, geometry, replay_start=0, count_start=80, end=400
        )
        assert window == serial

    @pytest.mark.parametrize("tier", BACKENDS)
    def test_invalid_windows_raise(self, tier):
        trace = mem_trace("v", [(OP_LOAD, 0)])
        geometry = CacheGeometry(512, 2, 32)
        with pytest.raises(ValueError, match="window"):
            WINDOW_MEASURES[tier](
                trace, geometry, replay_start=5, count_start=5, end=2
            )
        with pytest.raises(ValueError, match="count_start"):
            WINDOW_MEASURES[tier](
                trace, geometry, replay_start=3, count_start=1, end=5
            )

    @pytest.mark.parametrize("tier", BACKENDS)
    def test_all_warmup_window_counts_nothing(self, tier):
        """count_start beyond the window end -> zero measured accesses."""
        trace = mem_trace("aw", [(OP_LOAD, i * 32) for i in range(50)])
        geometry = CacheGeometry(512, 2, 32)
        result = WINDOW_MEASURES[tier](
            trace, geometry, replay_start=0, count_start=50, end=50
        )
        assert result == MissRateResult(0, 0, 0, 0)
        assert result.miss_rate == 0.0


# ------------------------------------------------------------------ #
# Degenerate-trace contract (satellite: edge cases on every tier)
# ------------------------------------------------------------------ #


DEGENERATES = {
    "no-mem-ops": [(OP_INT, 0)] * 12,
    "single-access": [(OP_INT, 0)] * 5 + [(OP_LOAD, 64)],
    "single-store": [(OP_STORE, 64)],
    "empty-trace": [],
}


class TestDegenerateTraces:
    @pytest.mark.parametrize("name", sorted(DEGENERATES))
    @pytest.mark.parametrize("chunks", [0, 1, 3])
    def test_all_tiers_byte_agree(self, name, chunks, no_cache):
        """Empty/one-access streams: identical counters on every tier."""
        trace = mem_trace(name, DEGENERATES[name])
        config = SystemConfig()
        flats = []
        for backend in BACKENDS:
            runner.clear_caches()
            runner._TRACE_CACHE[(name, 1000, 0)] = trace
            result = runner.execute(
                name, config, 1000, mode="missrate", backend=backend,
                chunks=chunks,
            )
            flats.append(result.to_flat())
        assert flats[0] == flats[1] == flats[2]

    def test_single_access_is_all_warmup_free(self, no_cache):
        """One mem op: warmup = int(1*0.2) = 0, so it IS measured."""
        trace = mem_trace("one", [(OP_LOAD, 64)])
        runner._TRACE_CACHE[("one", 10, 0)] = trace
        result = runner.execute("one", SystemConfig(), 10, mode="missrate")
        assert result.dcache.accesses == 1
        assert result.dcache.misses == 1  # cold miss

    def test_no_mem_ops_miss_rate_zero(self, no_cache):
        trace = mem_trace("none", [(OP_INT, 0)] * 8)
        runner._TRACE_CACHE[("none", 10, 0)] = trace
        for chunks in (0, 4):
            result = runner.execute(
                "none", SystemConfig(), 10, mode="missrate", chunks=chunks
            )
            assert result.dcache.accesses == 0
            assert result.dcache.miss_rate == 0.0


# ------------------------------------------------------------------ #
# Exactness: chunked merge == serial golden (Hypothesis property)
# ------------------------------------------------------------------ #


@st.composite
def mem_traces(draw) -> Trace:
    """Short load/store streams over a small block pool (reuse-heavy)."""
    length = draw(st.integers(min_value=1, max_value=120))
    pool = draw(
        st.lists(st.integers(min_value=0, max_value=0x3FF), min_size=2, max_size=10)
    )
    picks = draw(
        st.lists(st.integers(min_value=0, max_value=2**20), min_size=length,
                 max_size=length)
    )
    spec = []
    for pick in picks:
        op = OP_LOAD if pick % 3 else OP_STORE
        if pick % 7 == 0:
            op = OP_INT
        spec.append((op, (pool[pick % len(pool)] << 5) | (pick % 32)))
    return mem_trace("prop", spec)


@given(
    trace=mem_traces(),
    chunks=st.integers(min_value=1, max_value=9),
    assoc=st.sampled_from([1, 2, 4]),
    replacement=st.sampled_from(["lru", "fifo", "random", "plru"]),
)
def test_chunked_merge_equals_serial_golden(trace, chunks, assoc, replacement):
    """Full-prefix overlap: merged counters == serial, all three tiers.

    Replaying every chunk from position 0 reproduces serial cache state
    exactly for *any* replacement policy (including ``random``'s
    deterministic per-set RNG stream), so the merge must match the
    reference serial counters byte for byte on every tier.
    """
    geometry = CacheGeometry(assoc * 8 * 32, assoc, 32)
    golden = measure_miss_rate(trace, geometry, replacement)
    for tier in BACKENDS:
        merged = chunked_counters(trace, geometry, replacement, tier, chunks)
        assert merged == golden, (tier, chunks, assoc, replacement)


@given(
    trace=mem_traces(),
    chunks=st.integers(min_value=2, max_value=6),
)
def test_finite_overlap_counts_same_window(trace, chunks):
    """Any overlap: measured-access counts always tile [warmup, n)."""
    geometry = CacheGeometry(512, 2, 32)
    golden = measure_miss_rate(trace, geometry)
    for overlap in (0, 5, 10_000):
        merged = chunked_counters(
            trace, geometry, "lru", "reference", chunks, overlap=overlap
        )
        assert merged.accesses == golden.accesses
        assert merged.load_accesses == golden.load_accesses


# ------------------------------------------------------------------ #
# Runner: execution, report, cache key, sidecar
# ------------------------------------------------------------------ #


BENCH = "gcc"
INSTRUCTIONS = 6000


class TestChunkedRunner:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("chunks", [1, 4])
    def test_to_flat_byte_identical_to_serial(self, backend, chunks, no_cache):
        config = SystemConfig()
        serial = runner.execute(
            BENCH, config, INSTRUCTIONS, mode="missrate", backend=backend
        )
        chunked = runner.execute(
            BENCH, config, INSTRUCTIONS, mode="missrate", backend=backend,
            chunks=chunks,
        )
        assert chunked.to_flat() == serial.to_flat()

    def test_pool_path_matches_serial_fanout(self, no_cache):
        config = SystemConfig()
        lone = runner.execute(
            BENCH, config, INSTRUCTIONS, mode="missrate", backend="fast",
            chunks=4, chunk_jobs=1,
        )
        pooled = runner.execute(
            BENCH, config, INSTRUCTIONS, mode="missrate", backend="fast",
            chunks=4, chunk_jobs=4,
        )
        assert pooled.to_flat() == lone.to_flat()

    @pytest.mark.parametrize("overlap", [None, 0, 64])
    def test_report_always_populated(self, overlap, no_cache):
        result = runner.execute(
            BENCH, SystemConfig(), INSTRUCTIONS, mode="missrate",
            chunks=3, chunk_overlap=overlap,
        )
        report = getattr(result, runner.CHUNK_REPORT_ATTR)
        assert report["chunks"] == 3
        assert report["exact"] is (overlap is None)
        sample = report["sample"]
        for field in ("end", "accesses", "misses_chunked", "misses_serial",
                      "abs_miss_rate_error"):
            assert field in sample
        if overlap is None:
            assert sample["misses_chunked"] == sample["misses_serial"]
            assert sample["abs_miss_rate_error"] == 0.0

    def test_chunked_requires_missrate_mode(self, no_cache):
        with pytest.raises(ValueError, match="missrate"):
            runner.execute(BENCH, SystemConfig(), 1000, mode="sim", chunks=2)
        with pytest.raises(ValueError, match="chunk_overlap"):
            runner.execute(
                BENCH, SystemConfig(), 1000, mode="missrate", chunk_overlap=4
            )

    def test_v7_key_embeds_chunk_plan(self):
        config = SystemConfig()
        serial = runner.cache_key(BENCH, config, 1000, mode="missrate")
        chunked = runner.cache_key(BENCH, config, 1000, mode="missrate", chunks=4)
        finite = runner.cache_key(
            BENCH, config, 1000, mode="missrate", chunks=4, chunk_overlap=128
        )
        other = runner.cache_key(BENCH, config, 1000, mode="missrate", chunks=5)
        assert len({serial, chunked, finite, other}) == 4

    def test_cache_hit_reattaches_report_sidecar(self, isolated_cache):
        config = SystemConfig()
        first = runner.run_benchmark(
            BENCH, config, INSTRUCTIONS, mode="missrate", chunks=3
        )
        assert getattr(first, runner.CHUNK_REPORT_ATTR, None) is not None
        # A fresh process would miss the in-memory cache: simulate by
        # clearing it and resolving from disk.
        runner._RESULT_CACHE.clear()
        hit = runner.load_cached(
            BENCH, config, INSTRUCTIONS, mode="missrate", chunks=3
        )
        assert hit is not None
        report = getattr(hit, runner.CHUNK_REPORT_ATTR, None)
        assert report is not None and report["chunks"] == 3

    def test_chunked_and_serial_never_collide_on_disk(self, isolated_cache):
        config = SystemConfig()
        serial = runner.run_benchmark(BENCH, config, INSTRUCTIONS, mode="missrate")
        chunked = runner.run_benchmark(
            BENCH, config, INSTRUCTIONS, mode="missrate", chunks=2
        )
        assert serial.to_flat() == chunked.to_flat()
        names = {path.name for path in Path(isolated_cache).iterdir()}
        # Two result entries (distinct keys) plus the chunk-report sidecar.
        assert len([n for n in names if n.endswith(".json")
                    and not n.endswith(".chunk.json")]) == 2
        assert any(n.endswith(".chunk.json") for n in names)


# ------------------------------------------------------------------ #
# Sweep + CLI surfaces
# ------------------------------------------------------------------ #


class TestChunkedSurfaces:
    def test_runspec_carries_chunk_plan_in_key(self):
        from repro.sweep.spec import RunSpec

        config = SystemConfig()
        serial = RunSpec(BENCH, config, 1000, mode="missrate")
        chunked = RunSpec(BENCH, config, 1000, mode="missrate", chunks=4)
        assert serial.key() != chunked.key()
        assert "chunks=4" in chunked.describe()
        with pytest.raises(ValueError, match="missrate"):
            RunSpec(BENCH, config, 1000, mode="sim", chunks=4)

    def test_trace_report_chunked_rows_match_serial(self, no_cache, capsys):
        from repro.experiments import external
        from repro.experiments.common import ExperimentSettings

        settings = ExperimentSettings(instructions=2000)
        serial = external.external_rows(DATA_DIR, settings)
        chunked = external.external_rows(DATA_DIR, settings, chunks=3)
        assert serial == chunked

    def test_cli_trace_run_chunked_json_identical(self, no_cache, capsys):
        base = ["trace", "run", str(SAMPLE), "--mode", "missrate",
                "--instructions", "2000", "--json", "--no-cache"]
        assert main(base) == 0
        serial = capsys.readouterr()
        assert main(base + ["--chunks", "3"]) == 0
        chunked = capsys.readouterr()
        assert chunked.out == serial.out  # stdout byte-identical
        assert "[chunked: 3 chunk(s)" in chunked.err
        assert "(exact)" in chunked.err

    def test_cli_rejects_chunked_sim_mode(self, no_cache, capsys):
        code = main(["trace", "run", str(SAMPLE), "--chunks", "2",
                     "--no-cache"])
        assert code == 2
        err = capsys.readouterr().err
        assert "missrate" in err and err.count("\n") == 1

    def test_cli_sweep_rejects_chunks(self, no_cache, capsys):
        code = main(["sweep", "--benchmarks", "gcc", "--instructions", "2000",
                     "--chunks", "2"])
        assert code == 2
        assert "missrate" in capsys.readouterr().err
