"""Service subsystem tests: protocol, queue, limits, stores, execution."""

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.service.jobs import execute_job
from repro.service.limits import RateLimiter, TokenBucket
from repro.service.protocol import (
    ExperimentJobSpec,
    ProtocolError,
    SweepJobSpec,
    canonical_payload,
    fingerprint,
    parse_job_request,
)
from repro.service.queue import ID_LENGTH, JobQueue
from repro.service.store import ReportStore, cache_stats, shard_counts
from repro.sim import runner
from repro.sim.config import SystemConfig
from repro.workload import generate_trace, write_trace
from repro.workload.profiles import benchmark_names


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Fresh in-process and on-disk caches."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    runner.clear_caches()
    yield tmp_path / "cache"
    runner.clear_caches()


# ------------------------------------------------------------------ #
# Protocol
# ------------------------------------------------------------------ #


class TestProtocol:
    def test_sweep_defaults_mirror_cli(self):
        spec = parse_job_request({"kind": "sweep", "benchmarks": ["gcc"]})
        assert isinstance(spec, SweepJobSpec)
        assert spec.sizes == (16,)
        assert spec.ways == (4,)
        assert spec.latencies == (1,)
        assert spec.policies == ("seldm_waypred",)
        assert spec.baseline_policy == "parallel"
        assert spec.instructions == 25_000
        assert spec.component == "dcache"
        assert spec.backend == "reference"
        assert spec.chunks == 0
        assert spec.chunk_overlap is None

    def test_chunk_fields_ride_the_fingerprint(self):
        """Explicit serial chunking parses; the fields shape identity."""
        spec = parse_job_request(
            {"kind": "sweep", "benchmarks": ["gcc"], "chunks": 0,
             "chunk_overlap": None}
        )
        assert spec.chunks == 0 and spec.chunk_overlap is None
        payload = canonical_payload(spec)
        assert payload["chunks"] == 0
        assert payload["chunk_overlap"] is None

    def test_kind_defaults_to_sweep(self):
        spec = parse_job_request({"benchmarks": ["gcc"]})
        assert isinstance(spec, SweepJobSpec)

    def test_benchmarks_default_to_all(self):
        spec = parse_job_request({"kind": "sweep"})
        assert spec.benchmarks == tuple(benchmark_names())

    def test_experiment_parse(self):
        spec = parse_job_request(
            {"kind": "experiment", "experiments": ["table4"],
             "benchmarks": ["gcc", "swim"], "instructions": 6000}
        )
        assert isinstance(spec, ExperimentJobSpec)
        assert spec.experiments == ("table4",)
        assert spec.instructions == 6000

    @pytest.mark.parametrize(
        "body, match",
        [
            ([1, 2], "JSON object"),
            ({"kind": "nope"}, "unknown job kind"),
            ({"kind": "sweep", "bogus_field": 1}, "unknown field"),
            ({"kind": "sweep", "benchmarks": []}, "at least one workload"),
            ({"kind": "sweep", "benchmarks": ["nope"]}, "unknown benchmark"),
            ({"kind": "sweep", "benchmarks": "gcc"}, "list of strings"),
            ({"kind": "sweep", "sizes": [0]}, "positive integers"),
            ({"kind": "sweep", "instructions": 0}, "integer >= 1"),
            ({"kind": "sweep", "policies": ["nope"]}, "unknown"),
            ({"kind": "sweep", "component": "l2"}, "unknown component"),
            ({"kind": "sweep", "backend": "cuda"}, "unknown backend"),
            ({"kind": "sweep", "chunks": -1}, "integer >= 0"),
            ({"kind": "sweep", "chunks": True}, "integer"),
            ({"kind": "sweep", "chunks": 2}, "missrate"),
            ({"kind": "sweep", "chunk_overlap": 4}, "chunk_overlap"),
            ({"kind": "experiment"}, "at least one experiment"),
            ({"kind": "experiment", "experiments": ["nope"]}, "unknown experiment"),
            ({"kind": "experiment", "experiments": ["table4"],
              "benchmarks": ["trace://x.din"]}, "unknown benchmark"),
        ],
    )
    def test_malformed_requests(self, body, match):
        with pytest.raises(ProtocolError, match=match):
            parse_job_request(body)

    def test_missing_trace_rejected_at_parse(self, tmp_path):
        with pytest.raises(ProtocolError):
            parse_job_request(
                {"kind": "sweep", "benchmarks": [f"trace://{tmp_path}/no.din"]}
            )

    def test_fingerprint_ignores_spelling(self):
        sparse = parse_job_request({"benchmarks": ["gcc", "swim"]})
        explicit = parse_job_request(
            {"kind": "sweep", "benchmarks": ["gcc", "swim"], "sizes": [16],
             "ways": [4], "latencies": [1], "policies": ["seldm_waypred"],
             "baseline_policy": "parallel", "instructions": 25_000,
             "salt": 0, "component": "dcache", "backend": "reference"}
        )
        assert fingerprint(sparse) == fingerprint(explicit)

    def test_fingerprint_is_order_sensitive(self):
        # Benchmark order shapes the report, so it is part of identity.
        ab = parse_job_request({"benchmarks": ["gcc", "swim"]})
        ba = parse_job_request({"benchmarks": ["swim", "gcc"]})
        assert fingerprint(ab) != fingerprint(ba)

    def test_fingerprint_tracks_trace_content(self, tmp_path, isolated_cache):
        path = tmp_path / "t.din"
        write_trace(path, generate_trace("gcc", 200))
        request = {"kind": "sweep", "benchmarks": [f"trace://{path}"]}
        before = fingerprint(parse_job_request(request))
        write_trace(path, generate_trace("gcc", 300))
        runner.clear_caches()  # workload ids memoize by (path, mtime, size)
        after = fingerprint(parse_job_request(request))
        assert before != after

    def test_canonical_payload_round_trips(self):
        spec = parse_job_request({"benchmarks": ["gcc"], "sizes": [8, 16]})
        payload = canonical_payload(spec)
        assert payload["kind"] == "sweep"
        assert parse_job_request(payload) == spec
        json.dumps(payload)  # JSON-safe


# ------------------------------------------------------------------ #
# Queue
# ------------------------------------------------------------------ #


FP_A = "a" * 64
FP_B = "b" * 64


class TestJobQueue:
    def test_lifecycle(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.sqlite")
        record, created = queue.submit(FP_A, "sweep", {"kind": "sweep"})
        assert created and record.state == "queued"
        assert record.id == FP_A[:ID_LENGTH]

        claimed = queue.claim()
        assert claimed.id == record.id and claimed.state == "running"
        assert queue.claim() is None  # nothing else queued

        queue.record_progress(record.id, 2, 1)
        assert queue.get(record.id).runs_done == 2

        queue.finish(record.id, 4, 1)
        done = queue.get(record.id)
        assert done.state == "done" and done.runs_done == 4
        assert done.finished is not None

    def test_submission_coalesces(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.sqlite")
        first, created = queue.submit(FP_A, "sweep", {})
        again, created_again = queue.submit(FP_A, "sweep", {})
        assert created and not created_again
        assert again.id == first.id
        assert queue.depth() == 1

    def test_failed_job_resubmission_requeues(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.sqlite")
        record, _ = queue.submit(FP_A, "sweep", {})
        queue.claim()
        queue.fail(record.id, "boom\ntraceback noise")
        failed = queue.get(record.id)
        assert failed.state == "failed" and failed.error == "boom"

        retried, created = queue.submit(FP_A, "sweep", {})
        assert created and retried.state == "queued"
        assert retried.error is None

    def test_recover_requeues_running_jobs(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.sqlite")
        queue.submit(FP_A, "sweep", {})
        queue.submit(FP_B, "sweep", {})
        queue.claim()
        recovered = queue.recover()
        assert [job.state for job in recovered] == ["queued"]
        assert queue.counts()["queued"] == 2

    def test_journal_survives_reopen(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        queue = JobQueue(path)
        record, _ = queue.submit(FP_A, "sweep", {"kind": "sweep"}, tenant="team-a")
        queue.close()

        reopened = JobQueue(path)
        persisted = reopened.get(record.id)
        assert persisted is not None
        assert persisted.tenant == "team-a"
        assert persisted.request == {"kind": "sweep"}

    def test_claim_order_is_fifo(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.sqlite")
        queue.submit(FP_B, "sweep", {})
        queue.submit(FP_A, "sweep", {})
        assert queue.claim().id == FP_B[:ID_LENGTH]

    def test_counts_and_depth(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.sqlite")
        assert queue.counts() == {"queued": 0, "running": 0, "done": 0, "failed": 0}
        queue.submit(FP_A, "sweep", {})
        queue.submit(FP_B, "sweep", {})
        queue.claim()
        assert queue.counts()["queued"] == 1
        assert queue.counts()["running"] == 1
        assert queue.depth() == 2

    def test_list_jobs_newest_first(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.sqlite")
        queue.submit(FP_A, "sweep", {})
        queue.submit(FP_B, "sweep", {})
        listed = queue.list_jobs()
        assert len(listed) == 2
        assert listed[0].created >= listed[1].created

    def test_document_shape(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.sqlite")
        record, _ = queue.submit(FP_A, "sweep", {"kind": "sweep"})
        document = record.to_document()
        json.dumps(document)  # JSON-safe
        assert document["state"] == "queued"
        assert document["fingerprint"] == FP_A

    def test_recover_clears_prior_life_metadata(self, tmp_path):
        """A re-queued crash casualty must not look failed or done.

        Regression: ``recover`` used to reset only ``state``/``started``/
        the counters, so a job whose row still carried ``error`` and
        ``finished`` from an earlier failed life (re-enqueued by a
        coalescing resubmit, then claimed, then orphaned by a crash)
        came back as 'queued' but presented stale failure metadata to
        status readers.
        """
        queue = JobQueue(tmp_path / "jobs.sqlite")
        record, _ = queue.submit(FP_A, "sweep", {})
        queue.claim()
        # Forge the prior-life residue a pre-fix journal could hold for
        # a running job: error + finished + progress counters all set.
        with queue._lock, queue._connection:
            queue._connection.execute(
                "UPDATE jobs SET error = 'boom', finished = 123.0,"
                " runs_done = 7, cache_hits = 3 WHERE id = ?",
                (record.id,),
            )
        recovered = queue.recover()
        assert [job.id for job in recovered] == [record.id]
        requeued = queue.get(record.id)
        assert requeued.state == "queued"
        assert requeued.error is None
        assert requeued.finished is None
        assert requeued.started is None
        assert requeued.runs_done == 0 and requeued.cache_hits == 0

    def test_compact_removes_only_stale_terminal_rows(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.sqlite")
        done, _ = queue.submit(FP_A, "sweep", {})
        queue.claim()
        queue.finish(done.id, 1, 0)
        queue.submit(FP_B, "sweep", {})  # still queued: never compacted

        # Fresh terminal rows survive a generous cutoff...
        assert queue.compact(3600.0) == []
        # ...and fall to an immediate one.
        assert queue.compact(0.0) == [done.id]
        assert queue.get(done.id) is None
        assert queue.counts() == {"queued": 1, "running": 0, "done": 0,
                                  "failed": 0}

    def test_compact_takes_failed_rows_and_spares_running(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.sqlite")
        failed, _ = queue.submit(FP_A, "sweep", {})
        queue.claim()
        queue.fail(failed.id, "boom")
        queue.submit(FP_B, "sweep", {})
        queue.claim()  # FP_B now running

        assert queue.compact(0.0) == [failed.id]
        assert queue.get(FP_B[:ID_LENGTH]).state == "running"
        # A compacted fingerprint can be submitted anew.
        resubmitted, created = queue.submit(FP_A, "sweep", {})
        assert created and resubmitted.state == "queued"

    def test_compact_negative_age_behaves_like_zero(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.sqlite")
        record, _ = queue.submit(FP_A, "sweep", {})
        queue.claim()
        queue.finish(record.id, 1, 0)
        assert queue.compact(-5.0) == [record.id]


# ------------------------------------------------------------------ #
# Rate limits
# ------------------------------------------------------------------ #


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestLimits:
    def test_bucket_drains_and_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # burst exhausted
        assert bucket.wait_seconds() == pytest.approx(1.0)
        clock.now = 1.0
        assert bucket.try_acquire()

    def test_bucket_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.now = 100.0  # long idle: still only `burst` tokens
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_nonpositive_rate_disables_limiting(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=FakeClock())
        assert all(bucket.try_acquire() for _ in range(100))
        assert bucket.wait_seconds() == 0.0

    def test_bad_burst_rejected(self):
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.0)

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        assert limiter.allow("team-a")
        assert not limiter.allow("team-a")
        assert limiter.allow("team-b")  # fresh bucket, unaffected
        assert limiter.retry_after("team-a") == pytest.approx(1.0)
        assert limiter.retry_after("team-b") == pytest.approx(1.0)

    def test_retry_after_never_advertises_zero(self):
        """Regression: ``Retry-After: 0`` invites an immediate-retry loop.

        If the bucket refills between the 429 and the hint probe (or the
        deficit is sub-second), ``wait_seconds`` is legitimately ~0 —
        but the header must still clamp to >= 1 second.
        """
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        assert limiter.allow("team-a")
        assert not limiter.allow("team-a")
        clock.now = 5.0  # refilled before the hint was computed
        assert limiter._bucket("team-a").wait_seconds() == 0.0
        assert limiter.retry_after("team-a") == 1.0

    def test_retry_after_subsecond_deficit_rounds_up(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=10.0, burst=1.0, clock=clock)
        assert limiter.allow("fast-tenant")
        # Deficit of one token at 10 tokens/s -> 0.1 s raw wait.
        assert limiter._bucket("fast-tenant").wait_seconds() == pytest.approx(0.1)
        assert limiter.retry_after("fast-tenant") == 1.0

    def test_retry_after_preserves_long_waits(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=0.25, burst=1.0, clock=clock)
        assert limiter.allow("slow-tenant")
        assert limiter.retry_after("slow-tenant") == pytest.approx(4.0)


# ------------------------------------------------------------------ #
# Stores
# ------------------------------------------------------------------ #


class TestReportStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ReportStore(tmp_path / "reports")
        fp = "ab" + "0" * 62
        assert store.get(fp) is None
        path = store.put(fp, '{"x": 1}')
        assert path.parent.name == "ab"  # prefix shard
        assert store.get(fp) == '{"x": 1}'
        assert fp in store
        assert not any(p.name.startswith(".tmp") for p in path.parent.iterdir())

    def test_shard_accounting(self, tmp_path):
        store = ReportStore(tmp_path / "reports")
        store.put("ab" + "0" * 62, "{}")
        store.put("ab" + "1" * 62, "{}")
        store.put("cd" + "0" * 62, "{}")
        assert store.shard_counts() == {"ab": 2, "cd": 1}
        assert len(list(store.fingerprints())) == 3

    def test_module_shard_counts(self):
        counts = shard_counts(["a1", "a2", "b3"], buckets=16)
        assert counts == {"a": 2, "b": 1}
        wide = shard_counts(["a1", "a2", "b3"], buckets=256)
        assert wide == {"a1": 1, "a2": 1, "b3": 1}
        with pytest.raises(ValueError, match="16 or 256"):
            shard_counts([], buckets=8)

    def test_cache_stats_over_run_cache(self, isolated_cache):
        runner.run_benchmark("gcc", SystemConfig(), 2_000, mode="missrate")
        stats = cache_stats()
        assert stats["entries"] == 1
        assert sum(stats["shards"].values()) == 1

    def test_cache_stats_disabled_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        assert cache_stats() == {"entries": 0, "shards": {}}


class TestAtomicCacheWrites:
    def test_interleaved_writers_never_tear(self, isolated_cache):
        """Two writers hammering one key must never expose a torn entry:
        the final path only ever holds a complete JSON document, and no
        temp siblings leak."""
        result = runner.run_benchmark("gcc", SystemConfig(), 2_000, mode="missrate")
        key = "deadbeef" * 8
        path = isolated_cache / f"{key}.json"
        stop = threading.Event()
        torn = []

        def writer():
            while not stop.is_set():
                runner._store_disk(key, result)

        def reader():
            while not stop.is_set():
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        json.load(handle)
                except FileNotFoundError:
                    continue  # before the first publish
                except ValueError as error:  # torn read
                    torn.append(str(error))

        threads = [threading.Thread(target=writer) for _ in range(2)]
        threads.append(threading.Thread(target=reader))
        for thread in threads:
            thread.start()
        threading.Event().wait(0.5)
        stop.set()
        for thread in threads:
            thread.join()

        assert torn == []
        assert runner._load_disk(key) is not None
        strays = [p for p in isolated_cache.iterdir() if p.name.startswith(".tmp")]
        assert strays == []


# ------------------------------------------------------------------ #
# Job execution
# ------------------------------------------------------------------ #


def _cli_output(argv, cache_dir):
    process = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        cwd=Path(__file__).resolve().parent.parent,
        env={
            "PYTHONPATH": "src",
            "PATH": "/usr/bin:/bin",
            "REPRO_CACHE_DIR": str(cache_dir),
        },
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


class TestExecuteJob:
    def test_sweep_report_matches_cli_bytes(self, isolated_cache):
        spec = parse_job_request(
            {"kind": "sweep", "benchmarks": ["gcc", "swim"], "instructions": 4_000}
        )
        outcome = execute_job(spec)
        expected = _cli_output(
            ["sweep", "--benchmarks", "gcc,swim", "--instructions", "4000",
             "--json"],
            isolated_cache,
        )
        assert outcome.text + "\n" == expected
        assert outcome.runs_done == 4  # 2 benchmarks x (point + baseline)
        assert outcome.cache_hits == 0

    def test_experiment_report_matches_cli_bytes(self, isolated_cache):
        spec = parse_job_request(
            {"kind": "experiment", "experiments": ["table4"],
             "benchmarks": ["gcc", "swim"], "instructions": 6_000}
        )
        outcome = execute_job(spec)
        # Same work through the CLI: REPRO_SCALE 0.1 x 60k default = 6k.
        process = subprocess.run(
            [sys.executable, "-m", "repro.cli", "table4", "--json"],
            capture_output=True, text=True,
            cwd=Path(__file__).resolve().parent.parent,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin",
                 "REPRO_CACHE_DIR": str(isolated_cache),
                 "REPRO_SCALE": "0.1",
                 "REPRO_BENCHMARKS": "gcc,swim"},
        )
        assert process.returncode == 0, process.stderr
        assert outcome.text + "\n" == process.stdout

    def test_progress_sink_sees_every_run(self, isolated_cache):
        spec = parse_job_request(
            {"kind": "sweep", "benchmarks": ["gcc"], "instructions": 4_000}
        )
        events = []
        cold = execute_job(spec, progress=events.append)
        assert [e.runs_done for e in events] == [1, 2]
        assert all(not e.cache_hit for e in events)
        assert all(e.seconds >= 0 for e in events)
        assert cold.runs_done == 2 and cold.cache_hits == 0

        events.clear()
        warm = execute_job(spec, progress=events.append)
        assert warm.text == cold.text
        assert warm.cache_hits == 2
        assert all(e.cache_hit for e in events)


# ------------------------------------------------------------------ #
# Dynamic policies: the interval field and the dynamic experiment
# ------------------------------------------------------------------ #


class TestIntervalProtocol:
    def test_interval_defaults_to_zero(self):
        assert parse_job_request({"kind": "sweep", "benchmarks": ["gcc"]}).interval == 0
        assert parse_job_request(
            {"kind": "experiment", "experiments": ["table4"]}
        ).interval == 0

    def test_interval_parses_on_both_kinds(self):
        sweep = parse_job_request(
            {"kind": "sweep", "benchmarks": ["gcc"], "interval": 128})
        assert sweep.interval == 128
        experiment = parse_job_request(
            {"kind": "experiment", "experiments": ["dynamic"], "interval": 128})
        assert experiment.interval == 128

    def test_interval_rejects_negative_and_non_int(self):
        for bad in (-1, True, "128"):
            with pytest.raises(ProtocolError, match="interval"):
                parse_job_request(
                    {"kind": "sweep", "benchmarks": ["gcc"], "interval": bad})

    def test_interval_rejects_chunked_sweeps(self):
        with pytest.raises(ProtocolError, match="incompatible"):
            parse_job_request(
                {"kind": "sweep", "benchmarks": ["gcc"], "interval": 8,
                 "chunks": 2, "chunk_overlap": 0})

    def test_interval_shapes_the_fingerprint(self):
        base = parse_job_request({"kind": "sweep", "benchmarks": ["gcc"]})
        ticked = parse_job_request(
            {"kind": "sweep", "benchmarks": ["gcc"], "interval": 64})
        assert canonical_payload(ticked)["interval"] == 64
        assert fingerprint(base) != fingerprint(ticked)

    def test_dynamic_experiment_admits_trace_refs(self, tmp_path):
        path = tmp_path / "t.csv.gz"
        write_trace(path, generate_trace("gcc", 100))
        ref = f"trace://{path}#csv"
        spec = parse_job_request(
            {"kind": "experiment", "experiments": ["dynamic"],
             "benchmarks": [ref], "interval": 50})
        assert spec.benchmarks == (ref,)
        # Profile-table experiments still reject file-backed workloads.
        with pytest.raises(ProtocolError, match="unknown benchmark"):
            parse_job_request(
                {"kind": "experiment", "experiments": ["table4", "dynamic"],
                 "benchmarks": [ref]})


class TestDynamicExperimentJob:
    def test_report_matches_cli_bytes_on_sample_traces(self, isolated_cache):
        """The acceptance criterion: the dynamic experiment over both
        committed sample traces produces byte-identical reports via the
        service and the CLI."""
        data = Path(__file__).resolve().parent / "data"
        refs = [f"trace://{data / 'sample.din'}#din",
                f"trace://{data / 'sample.csv.gz'}#csv"]
        spec = parse_job_request(
            {"kind": "experiment", "experiments": ["dynamic"],
             "benchmarks": refs, "instructions": 6_000, "interval": 300})
        outcome = execute_job(spec)
        process = subprocess.run(
            [sys.executable, "-m", "repro.cli", "dynamic",
             "--interval", "300", "--json"],
            capture_output=True, text=True,
            cwd=Path(__file__).resolve().parent.parent,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin",
                 "REPRO_CACHE_DIR": str(isolated_cache),
                 "REPRO_SCALE": "0.1",
                 "REPRO_BENCHMARKS": ",".join(refs)},
        )
        assert process.returncode == 0, process.stderr
        assert outcome.text + "\n" == process.stdout
        rows = json.loads(outcome.text)[0]["rows"]
        assert any(row["ticks"] > 0 for row in rows)
