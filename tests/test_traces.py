"""Trace ingestion: format registry, streaming, caching, and equivalence.

Covers the external-workload subsystem end to end: the
``@register_trace_format`` registry and its error conventions, the
built-in Dinero/ChampSim/CSV readers and writers, bounded-memory
streaming (chunked encoding), ``trace://`` workload refs through the
runner and ``Machine``, disk-cache staleness on file edits, and the
byte-identical equivalence of streaming vs eager replay on both
backends — including the two committed sample traces under
``tests/data/``.
"""

from __future__ import annotations

import json
import weakref
from pathlib import Path

import pytest

from repro.api import Machine
from repro.fastsim.missrate import fast_miss_rate
from repro.sim import runner
from repro.sim.config import SystemConfig
from repro.sim.functional import measure_miss_rate
from repro.sim.simulator import Simulator
from repro.workload import (
    Instr,
    OP_BRANCH,
    OP_CALL,
    OP_INT,
    OP_LOAD,
    OP_RET,
    OP_STORE,
    StreamingTrace,
    Trace,
    TraceParseError,
    detect_trace_format,
    generate_trace,
    get_trace_format,
    is_trace_ref,
    load_trace,
    load_trace_ref,
    make_trace_ref,
    parse_trace_ref,
    register_trace_format,
    trace_fingerprint,
    trace_format_names,
    unregister_trace_format,
    write_trace,
)
from repro.workload.encode import encode_trace
from repro.workload.formats import trace_name, trace_ref_fingerprint
from repro.workload.trace import summarize_instructions

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional test dep
    HAVE_HYPOTHESIS = False

DATA_DIR = Path(__file__).parent / "data"
SAMPLES = (DATA_DIR / "sample.din", DATA_DIR / "sample.csv.gz")


def instr_tuple(instr: Instr):
    return (instr.pc, instr.op, instr.dst, instr.src1, instr.src2,
            instr.addr, instr.taken, instr.target, instr.xor_handle)


@pytest.fixture(autouse=True)
def _isolated_caches(monkeypatch, tmp_path):
    """Every test gets empty in-process memos and a throwaway disk cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    runner.clear_caches()
    yield
    runner.clear_caches()


# ------------------------------------------------------------------ #
# Registry
# ------------------------------------------------------------------ #


class TestFormatRegistry:
    def test_builtins_registered(self):
        assert set(trace_format_names()) >= {"din", "champsim", "csv"}

    def test_unknown_format_names_valid_kinds(self):
        with pytest.raises(ValueError, match="registered formats"):
            get_trace_format("elf")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_trace_format("din")(lambda path: iter(()))

    def test_custom_format_plugs_into_load(self, tmp_path):
        @register_trace_format("hexline", extensions=(".hexline",))
        def read_hexline(path):
            with open(path) as handle:
                for line in handle:
                    yield Instr(pc=0x1000, op=OP_LOAD, dst=1, addr=int(line, 16))

        try:
            path = tmp_path / "t.hexline"
            path.write_text("20\n40\n60\n")
            trace = load_trace(path)  # detected by the registered extension
            assert [i.addr for i in trace] == [0x20, 0x40, 0x60]
            assert trace_fingerprint(path).endswith(":hexline.v1")
        finally:
            unregister_trace_format("hexline")
        with pytest.raises(ValueError, match="registered formats"):
            load_trace(path)

    def test_detection_by_extension(self):
        assert detect_trace_format("a.din").name == "din"
        assert detect_trace_format("a.champsim").name == "champsim"
        assert detect_trace_format("a.csv").name == "csv"
        assert detect_trace_format("a.csv.gz").name == "csv"
        assert detect_trace_format("A.DIN.GZ").name == "din"  # case + .gz strip

    def test_detection_failure_names_file_and_formats(self):
        with pytest.raises(ValueError, match=r"a\.bin.*registered formats"):
            detect_trace_format("a.bin")

    def test_trace_name_strips_suffixes(self):
        assert trace_name("dir/app.csv.gz") == "app"
        assert trace_name("app.din") == "app"
        assert trace_name("noext") == "noext"


# ------------------------------------------------------------------ #
# Built-in readers/writers
# ------------------------------------------------------------------ #


class TestDineroFormat:
    def test_labels_comments_and_pc_synthesis(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text(
            "# comment\n"
            "\n"
            "2 1000\n"      # ifetch: sets pc
            "0 2000\n"      # load
            "1 2010 4\n"    # store; trailing size field ignored
            "2 1008\n"
        )
        instrs = list(load_trace(path))
        assert [i.op for i in instrs] == [OP_INT, OP_LOAD, OP_STORE, OP_INT]
        assert instrs[0].pc == 0x1000
        assert instrs[1].pc == 0x1004 and instrs[1].addr == 0x2000
        assert instrs[1].xor_handle == 0x2000 >> 5  # exact block handle
        assert instrs[2].pc == 0x1008 and instrs[2].addr == 0x2010
        assert instrs[3].pc == 0x1008  # re-anchored by the second ifetch

    @pytest.mark.parametrize(
        "line, message",
        [
            ("7 1000", "unknown dinero record label"),
            ("0", "expected"),
            ("0 xyzzy", "invalid address"),
        ],
    )
    def test_corrupt_lines_name_file_and_line(self, tmp_path, line, message):
        path = tmp_path / "bad.din"
        path.write_text("2 1000\n" + line + "\n")
        with pytest.raises(TraceParseError, match=message) as excinfo:
            list(load_trace(path))
        assert "bad.din" in str(excinfo.value) and "line 2" in str(excinfo.value)

    def test_round_trip_preserves_address_stream(self, tmp_path):
        source = generate_trace("gcc", 400)
        path = tmp_path / "t.din"
        assert write_trace(path, source) == 400
        loaded = load_trace(path)
        got = [(i.op, i.addr) for i in loaded if i.op in (OP_LOAD, OP_STORE)]
        want = [(i.op, i.addr) for i in source if i.op in (OP_LOAD, OP_STORE)]
        assert got == want


class TestChampsimFormat:
    def test_all_kinds_parse(self, tmp_path):
        path = tmp_path / "t.champsim"
        path.write_text(
            "# header\n"
            "0x400000 I\n"
            "0x400004 F\n"
            "0x400008 L 0x8000\n"
            "0x40000c S 32772\n"
            "0x400010 B 1 0x400100\n"
            "0x400100 C 1 0x401000\n"
            "0x401000 R 1 0x400104\n"
        )
        instrs = list(load_trace(path))
        assert [i.op for i in instrs] == [
            OP_INT, 1, OP_LOAD, OP_STORE, OP_BRANCH, OP_CALL, OP_RET
        ]
        assert instrs[2].addr == 0x8000 and instrs[2].xor_handle == 0x8000 >> 5
        assert instrs[3].addr == 32772
        assert instrs[4].taken and instrs[4].target == 0x400100
        assert instrs[6].op == OP_RET and instrs[6].target == 0x400104

    @pytest.mark.parametrize(
        "line, message",
        [
            ("0x400000 Z", "unknown record kind"),
            ("0x400000 L", "needs a data address"),
            ("0x400000 B 1", "needs '<taken> <target>'"),
            ("0x400000", "expected"),
            ("zap L 0x10", "invalid pc"),
        ],
    )
    def test_corrupt_lines(self, tmp_path, line, message):
        path = tmp_path / "bad.champsim"
        path.write_text(line + "\n")
        with pytest.raises(TraceParseError, match=message):
            list(load_trace(path))

    def test_round_trip_preserves_control_flow(self, tmp_path):
        source = generate_trace("gcc", 400)
        path = tmp_path / "t.champsim"
        write_trace(path, source)
        loaded = list(load_trace(path))
        assert [(i.pc, i.op, i.taken, i.target) for i in loaded] == \
            [(i.pc, i.op, i.taken, i.target) for i in source]


class TestCsvFormat:
    def test_lossless_round_trip(self, tmp_path):
        source = generate_trace("go", 500)
        path = tmp_path / "t.csv.gz"
        assert write_trace(path, source) == 500
        loaded = load_trace(path)
        assert [instr_tuple(i) for i in loaded] == [instr_tuple(i) for i in source]

    def test_gzip_by_magic_bytes_not_extension(self, tmp_path):
        source = generate_trace("gcc", 50)
        gz = tmp_path / "t.csv.gz"
        write_trace(gz, source)
        plain_named = tmp_path / "t.csv"  # gzip payload behind a .csv name
        plain_named.write_bytes(gz.read_bytes())
        assert [instr_tuple(i) for i in load_trace(plain_named)] == \
            [instr_tuple(i) for i in source]

    def test_minimal_columns_and_synthetic_pcs(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("op,addr\nload,0x100\nstore,0x200\nint,\n")
        instrs = list(load_trace(path))
        assert [i.op for i in instrs] == [OP_LOAD, OP_STORE, OP_INT]
        assert instrs[1].pc == instrs[0].pc + 4  # synthetic 4-byte step
        assert instrs[0].xor_handle == 0x100 >> 5

    def test_missing_op_column_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("address\n0x100\n")
        with pytest.raises(TraceParseError, match="'op' column"):
            list(load_trace(path))

    def test_unknown_op_and_bad_number(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("op,addr\njump,0x100\n")
        with pytest.raises(TraceParseError, match="unknown op 'jump'"):
            list(load_trace(path))
        path.write_text("op,addr\nload,banana\n")
        with pytest.raises(TraceParseError, match="invalid address"):
            list(load_trace(path))

    def test_truncated_gzip_is_a_parse_error(self, tmp_path):
        good = tmp_path / "t.csv.gz"
        write_trace(good, generate_trace("gcc", 200))
        bad = tmp_path / "cut.csv.gz"
        bad.write_bytes(good.read_bytes()[:-20])  # drop the gzip trailer
        with pytest.raises(TraceParseError, match="cut.csv.gz"):
            list(load_trace(bad))


class TestWriteTrace:
    def test_writer_required(self, tmp_path):
        @register_trace_format("readonly", extensions=(".ro",))
        def read_ro(path):  # pragma: no cover - never called
            yield Instr(pc=0, op=OP_INT)

        try:
            with pytest.raises(ValueError, match="no writer"):
                write_trace(tmp_path / "t.ro", [])
        finally:
            unregister_trace_format("readonly")

    def test_explicit_format_overrides_extension(self, tmp_path):
        source = generate_trace("gcc", 60)
        path = tmp_path / "t.dat"
        write_trace(path, source, fmt="din")
        assert len(load_trace(path, fmt="din")) == 60

    @pytest.mark.parametrize("name", ["t.din.gz", "t.champsim.gz", "t.csv.gz"])
    def test_gz_destinations_really_gzip(self, tmp_path, name):
        path = tmp_path / name
        write_trace(path, generate_trace("gcc", 40))
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # gzip magic
        assert len(load_trace(path)) == 40


# ------------------------------------------------------------------ #
# Loading and streaming
# ------------------------------------------------------------------ #


class TestLoadTrace:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceParseError, match="not found"):
            load_trace(tmp_path / "nope.din")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.din"
        path.write_text("# nothing but comments\n")
        with pytest.raises(TraceParseError, match="no instructions"):
            load_trace(path)

    def test_limit_and_name_override(self, tmp_path):
        path = tmp_path / "t.din"
        write_trace(path, generate_trace("gcc", 100))
        trace = load_trace(path, limit=40, name="gcc")
        assert trace.name == "gcc" and len(trace) == 40
        with pytest.raises(ValueError, match="limit"):
            load_trace(path, limit=0)

    def test_streaming_flag(self, tmp_path):
        path = tmp_path / "t.din"
        write_trace(path, generate_trace("gcc", 50))
        assert isinstance(load_trace(path), StreamingTrace)
        eager = load_trace(path, streaming=False)
        assert type(eager) is Trace and len(eager) == 50


class TestStreamingTrace:
    def _stream(self, n=100, chunk=16):
        def opener():
            return (Instr(pc=0x1000 + 4 * k, op=OP_INT, dst=1) for k in range(n))

        return StreamingTrace("synth", opener, chunk_instructions=chunk)

    def test_chunked_iteration(self):
        trace = self._stream(n=100, chunk=16)
        chunks = list(trace.iter_chunks())
        assert [len(c) for c in chunks] == [16] * 6 + [4]
        assert trace._length == 100  # memoized by the completed pass
        assert len(trace) == 100

    def test_len_without_materialization(self):
        trace = self._stream(n=100)
        assert len(trace) == 100
        assert trace._materialized is None

    def test_materialization_surface(self):
        trace = self._stream(n=10)
        assert trace[3].pc == 0x100c
        assert len(trace.instructions) == 10
        # materialized: chunk iteration now serves from the list
        assert [len(c) for c in trace.iter_chunks(4)] == [4, 4, 2]

    def test_summary_matches_eager(self, tmp_path):
        path = tmp_path / "t.csv.gz"
        source = generate_trace("swim", 600)
        write_trace(path, source)
        streaming = load_trace(path, chunk_instructions=64)
        assert streaming.summary() == source.summary()
        assert streaming.summary(64) == source.summary(block_bytes=64)

    def test_chunk_validation(self):
        with pytest.raises(ValueError, match="chunk_instructions"):
            StreamingTrace("x", lambda: iter(()), chunk_instructions=0)
        with pytest.raises(ValueError, match="chunk_instructions"):
            list(self._stream().iter_chunks(0))
        with pytest.raises(ValueError, match="chunk_instructions"):
            list(Trace("x", []).iter_chunks(0))


class _TrackedInstr(Instr):
    """Weakref-able Instr so tests can observe object lifetimes."""

    __slots__ = ("__weakref__",)


class TestChunkedEncodingMemoryBound:
    """The acceptance property: encoding a streaming trace keeps the
    number of live Instr objects bounded by the chunk size, however
    long the trace is — only compact flat arrays grow with length."""

    def _peak_live_during_encode(self, n: int, chunk: int) -> int:
        live = set()
        peak = 0

        def opener():
            nonlocal peak
            for k in range(n):
                op = OP_LOAD if k % 3 == 0 else (OP_STORE if k % 7 == 0 else OP_INT)
                instr = _TrackedInstr(
                    pc=0x1000 + 4 * k, op=op, dst=1, addr=(k * 64) & 0xFFFF
                )
                live.add(weakref.ref(instr, live.discard))
                peak = max(peak, len(live))
                yield instr

        trace = StreamingTrace("synth", opener, chunk_instructions=chunk)
        encoded = encode_trace(trace)
        encoded.ensure_instr_arrays(trace)
        assert encoded.instructions == n
        assert len(encoded.addrs) == sum(1 for k in range(n) if k % 3 == 0 or k % 7 == 0)
        return peak

    def test_peak_live_instrs_independent_of_length(self):
        chunk = 256
        short_peak = self._peak_live_during_encode(2_000, chunk)
        long_peak = self._peak_live_during_encode(20_000, chunk)
        # Bounded by the chunk plus CPython-internal slack, and — the
        # actual property — NOT growing with a 10x longer trace.
        assert short_peak <= 2 * chunk
        assert long_peak <= 2 * chunk
        assert long_peak <= short_peak + chunk // 4

    def test_numpy_views_preserve_streaming_bound(self):
        """The numpy views wrap the chunk-built array storage: building
        them (and the per-geometry block decode) never re-materializes
        the source, so peak live Instr stays chunk-bounded on the array
        path exactly as on the list path."""
        np = pytest.importorskip("numpy")
        chunk = 256
        n = 20_000
        live = set()
        peak = 0

        def opener():
            nonlocal peak
            for k in range(n):
                op = OP_LOAD if k % 3 == 0 else (OP_STORE if k % 7 == 0 else OP_INT)
                instr = _TrackedInstr(
                    pc=0x1000 + 4 * k, op=op, dst=1, addr=(k * 64) & 0xFFFF
                )
                live.add(weakref.ref(instr, live.discard))
                peak = max(peak, len(live))
                yield instr

        trace = StreamingTrace("synth", opener, chunk_instructions=chunk)
        encoded = encode_trace(trace)
        fields = SystemConfig().dcache.geometry().fields
        addrs = encoded.addrs_np()  # triggers the chunked encode pass
        blocks = encoded.blocks_np(fields)
        assert peak <= 2 * chunk
        assert addrs.shape == blocks.shape == (len(encoded),)
        # Zero-copy: the view aliases the chunk-built array storage.
        assert np.shares_memory(addrs, np.frombuffer(encoded.addrs, dtype=np.uint64))

    def test_each_simulation_path_parses_the_source_once(self):
        """Miss-rate (both backends) and fast full-sim each consume the
        streaming source exactly once — encode granularities share one
        pass instead of re-reading the file."""

        def counting_stream(n=800):
            opens = [0]

            def opener():
                opens[0] += 1
                return (
                    Instr(
                        pc=0x1000 + 4 * k,
                        op=OP_LOAD if k % 4 == 0 else OP_INT,
                        dst=1 + (k % 8),
                        addr=(k * 32) & 0xFFFF,
                        xor_handle=((k * 32) & 0xFFFF) >> 5,
                    )
                    for k in range(n)
                )

            return StreamingTrace("synth", opener, chunk_instructions=128), opens

        geometry = SystemConfig().dcache.geometry()
        trace, opens = counting_stream()
        fast_miss_rate(trace, geometry)
        assert opens[0] == 1

        trace, opens = counting_stream()
        measure_miss_rate(trace, geometry)
        assert opens[0] == 1

        trace, opens = counting_stream()
        result = Simulator(SystemConfig(), backend="fast").run(trace)
        assert opens[0] == 1
        assert result.core.instructions == 800

    def test_functional_paths_do_not_materialize(self, tmp_path):
        path = tmp_path / "t.csv.gz"
        write_trace(path, generate_trace("gcc", 2_000))
        geometry = SystemConfig().dcache.geometry()
        streaming = load_trace(path, chunk_instructions=128)
        fast = fast_miss_rate(streaming, geometry)
        assert streaming._materialized is None  # chunk-wise encode only
        streaming2 = load_trace(path, chunk_instructions=128)
        reference = measure_miss_rate(streaming2, geometry)
        assert streaming2._materialized is None  # two-pass iteration only
        assert fast == reference


# ------------------------------------------------------------------ #
# trace:// refs, fingerprints, and the runner
# ------------------------------------------------------------------ #


class TestTraceRefs:
    def test_parse_and_make(self):
        assert parse_trace_ref("trace://a/b.din") == ("a/b.din", None)
        assert parse_trace_ref("trace://a/b.dat#csv") == ("a/b.dat", "csv")
        assert make_trace_ref("x.din") == "trace://x.din"
        assert make_trace_ref("x.dat", "din") == "trace://x.dat#din"
        assert is_trace_ref("trace://x.din") and not is_trace_ref("gcc")
        assert not is_trace_ref(42)

    @pytest.mark.parametrize("bad", ["gcc", "trace://", "trace://#csv"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_trace_ref(bad)

    def test_hash_in_filename_survives_round_trip(self, tmp_path):
        # '#' is legal in file names: only a bare-identifier fragment
        # (no '/' or '.') is treated as a format.
        assert parse_trace_ref("trace://run#1.din") == ("run#1.din", None)
        assert parse_trace_ref("trace://run#1.din#din") == ("run#1.din", "din")
        path = tmp_path / "run#1.din"
        write_trace(path, generate_trace("gcc", 30))
        assert len(load_trace_ref(make_trace_ref(path))) == 30
        assert len(load_trace_ref(make_trace_ref(path, "din"))) == 30

    def test_load_trace_ref(self, tmp_path):
        path = tmp_path / "t.din"
        write_trace(path, generate_trace("gcc", 80))
        assert len(load_trace_ref(f"trace://{path}")) == 80
        assert len(load_trace_ref(f"trace://{path}#din", limit=10)) == 10

    def test_unregistered_format_is_a_parse_error(self, tmp_path):
        """``#fmt`` naming no registered reader: TraceParseError (one
        line, ingest convention), not a bare KeyError/ValueError —
        regression for refs that named a real file but a bogus format.
        """
        path = tmp_path / "t.din"
        write_trace(path, generate_trace("gcc", 10))
        ref = f"trace://{path}#nosuch"
        for probe in (load_trace_ref, trace_ref_fingerprint):
            with pytest.raises(TraceParseError) as excinfo:
                probe(ref)
            message = str(excinfo.value)
            assert "nosuch" in message and "registered formats" in message
            assert str(path) in message

    def test_runner_surfaces_unregistered_format(self, tmp_path):
        path = tmp_path / "t.din"
        write_trace(path, generate_trace("gcc", 10))
        ref = f"trace://{path}#nosuch"
        with pytest.raises(TraceParseError, match="registered formats"):
            runner.workload_id(ref)
        with pytest.raises(TraceParseError, match="registered formats"):
            runner.get_trace(ref, 10)


class TestFingerprint:
    def test_tracks_content(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 100\n")
        first = trace_fingerprint(path)
        assert first == trace_fingerprint(path)  # stable (and memoized)
        path.write_text("0 100\n1 200\n")
        assert trace_fingerprint(path) != first

    def test_includes_format_identity(self, tmp_path):
        path = tmp_path / "t.v"

        @register_trace_format("fmtv1", extensions=(".v",), version=1)
        def read_v1(p):  # pragma: no cover - never called
            yield Instr(pc=0, op=OP_INT)

        try:
            path.write_text("anything")
            v1 = trace_ref_fingerprint(f"trace://{path}#fmtv1")
            assert v1.endswith(":fmtv1.v1")
            unregister_trace_format("fmtv1")

            @register_trace_format("fmtv1", extensions=(".v",), version=2)
            def read_v2(p):  # pragma: no cover - never called
                yield Instr(pc=0, op=OP_INT)

            v2 = trace_ref_fingerprint(f"trace://{path}#fmtv1")
            assert v2.endswith(":fmtv1.v2") and v1 != v2
        finally:
            unregister_trace_format("fmtv1")

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceParseError, match="not found"):
            trace_fingerprint(tmp_path / "gone.din")


class TestRunnerIntegration:
    def _ref(self, tmp_path, benchmark="gcc", n=400) -> str:
        path = tmp_path / f"{benchmark}.csv.gz"
        write_trace(path, generate_trace(benchmark, n))
        return make_trace_ref(path)

    def test_get_trace_caps_and_memoizes(self, tmp_path):
        ref = self._ref(tmp_path, n=400)
        full = runner.get_trace(ref, 0)
        assert len(full) == 400
        assert runner.get_trace(ref, 0) is full  # memoized
        capped = runner.get_trace(ref, 100)
        assert len(capped) == 100
        over = runner.get_trace(ref, 10_000)
        assert len(over) == 400  # cap larger than the file: whole file

    def test_get_trace_reloads_after_edit(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 100\n")
        ref = make_trace_ref(path)
        first = runner.get_trace(ref, 0)
        assert len(first) == 1
        path.write_text("0 100\n1 200\n0 300\n")
        second = runner.get_trace(ref, 0)
        assert second is not first and len(second) == 3

    def test_workload_id(self, tmp_path):
        assert runner.workload_id("gcc") == "gcc"
        ref = self._ref(tmp_path)
        assert runner.workload_id(ref).startswith(f"{ref}@sha256:")

    def test_missrate_modes_agree(self, tmp_path):
        ref = self._ref(tmp_path, n=600)
        config = SystemConfig()
        reference = runner.execute(ref, config, 0, mode="missrate")
        fast = runner.execute(ref, config, 0, mode="missrate", backend="fast")
        assert reference.to_flat() == fast.to_flat()
        assert reference.core.instructions == 600
        assert reference.benchmark == "gcc"  # file stem, not the ref

    def test_disk_cache_staleness_on_file_edit(self, tmp_path, monkeypatch):
        """Editing a trace file must re-execute, never serve stale results."""
        path = tmp_path / "w.din"
        write_trace(path, generate_trace("gcc", 300))
        ref = make_trace_ref(path)
        config = SystemConfig()

        executions = []
        real_execute = runner.execute

        def counting_execute(*args, **kwargs):
            executions.append(args[0])
            return real_execute(*args, **kwargs)

        monkeypatch.setattr(runner, "execute", counting_execute)

        first = runner.run_benchmark(ref, config, 0, mode="missrate")
        again = runner.run_benchmark(ref, config, 0, mode="missrate")
        assert len(executions) == 1  # unchanged file: served from cache
        assert again.to_flat() == first.to_flat()

        # A cold process (fresh memos) still hits the *disk* cache.
        runner.clear_caches()
        cold = runner.run_benchmark(ref, config, 0, mode="missrate")
        assert len(executions) == 1
        assert cold.to_flat() == first.to_flat()

        # Mutate the file: both cache layers must miss.
        write_trace(path, generate_trace("swim", 300))
        edited = runner.run_benchmark(ref, config, 0, mode="missrate")
        assert len(executions) == 2
        assert edited.to_flat() != first.to_flat()

        # And the old result is not resurrected after another cold start.
        runner.clear_caches()
        assert runner.run_benchmark(ref, config, 0, mode="missrate").to_flat() \
            == edited.to_flat()
        assert len(executions) == 2

    def test_cache_key_raises_for_missing_trace(self, tmp_path):
        with pytest.raises(ValueError, match="not found"):
            runner.cache_key(
                make_trace_ref(tmp_path / "gone.din"), SystemConfig(), 100
            )


class TestMachineFileTraces:
    def test_path_ref_and_name_runs_agree(self, tmp_path):
        source = generate_trace("gcc", 300)
        path = tmp_path / "gcc.csv.gz"
        write_trace(path, source)
        machine = Machine.from_config(dcache_policy="seldm_waypred")
        by_path = machine.run(path)
        by_ref = machine.run(make_trace_ref(path), use_cache=False)
        in_memory = machine.run(source)
        assert by_path.to_flat() == by_ref.to_flat() == in_memory.to_flat()

    def test_instructions_caps_file_replay(self, tmp_path):
        path = tmp_path / "t.csv"
        write_trace(path, generate_trace("gcc", 300))
        machine = Machine()
        assert machine.run(path).core.instructions == 300
        assert machine.run(path, instructions=120).core.instructions == 120


# ------------------------------------------------------------------ #
# Streaming equivalence (property) and the committed samples
# ------------------------------------------------------------------ #


def _sim_flats(path: Path, name: str, backend: str):
    """to_flat() for streaming and eager replays of one file."""
    config = SystemConfig()
    flats = []
    for streaming in (True, False):
        trace = load_trace(path, name=name, streaming=streaming,
                           chunk_instructions=64)
        flats.append(Simulator(config, backend=backend).run(trace).to_flat())
    return flats


if HAVE_HYPOTHESIS:

    @settings(max_examples=5, deadline=None)
    @given(
        benchmark=st.sampled_from(["gcc", "swim", "go"]),
        instructions=st.integers(min_value=150, max_value=400),
        salt=st.integers(min_value=0, max_value=3),
    )
    def test_streaming_replay_byte_identical_property(benchmark, instructions, salt, tmp_path_factory):
        """StreamingTrace replay == eager replay == in-memory trace,
        byte-for-byte on both backends, for arbitrary written traces."""
        tmp_path = tmp_path_factory.mktemp("stream-eq")
        source = generate_trace(benchmark, instructions, salt)
        path = tmp_path / f"{benchmark}.csv.gz"
        write_trace(path, source)
        baseline = Simulator(SystemConfig()).run(source).to_flat()
        for backend in ("reference", "fast"):
            streaming_flat, eager_flat = _sim_flats(path, benchmark, backend)
            assert streaming_flat == eager_flat == baseline


@pytest.mark.parametrize("sample", SAMPLES, ids=lambda p: p.name)
def test_samples_run_end_to_end_byte_identical(sample):
    """Acceptance: each committed sample runs on both backends with
    byte-identical SimResult.to_flat(), streaming or eager."""
    reference = _sim_flats(sample, "sample", "reference")
    fast = _sim_flats(sample, "sample", "fast")
    assert reference[0] == reference[1] == fast[0] == fast[1]
    assert reference[0]["core_instructions"] == 160

    geometry = SystemConfig().dcache.geometry()
    slow = measure_miss_rate(load_trace(sample), geometry)
    quick = fast_miss_rate(load_trace(sample), geometry)
    assert slow == quick and slow.accesses > 0


def test_samples_summarize(tmp_path):
    din = load_trace(SAMPLES[0]).summary()
    csv = load_trace(SAMPLES[1]).summary()
    assert din.instructions == csv.instructions == 160
    assert din.loads > 0 and din.stores > 0
    assert csv.branches > 0  # CSV keeps control flow; dinero flattens it


# ------------------------------------------------------------------ #
# Satellite: block-size-parameterized summaries
# ------------------------------------------------------------------ #


class TestSummaryBlockSize:
    def test_unique_blocks_follow_block_size(self):
        # PCs at 0, 32, 64: three 32B blocks, two 64B blocks, one 128B.
        instrs = [Instr(pc=pc, op=OP_INT) for pc in (0, 32, 64)]
        trace = Trace("t", instrs)
        assert trace.summary().unique_blocks_touched == 3  # default 32B
        assert trace.summary(block_bytes=32).unique_blocks_touched == 3
        assert trace.summary(block_bytes=64).unique_blocks_touched == 2
        assert trace.summary(block_bytes=128).unique_blocks_touched == 1

    def test_regression_not_hardcoded_to_shift_5(self):
        """The historical bug: ``instr.pc >> 5`` regardless of geometry."""
        instrs = [Instr(pc=pc, op=OP_INT) for pc in range(0, 1024, 16)]
        trace = Trace("t", instrs)
        for block_bytes in (16, 32, 64, 256):
            expected = len({pc >> block_bytes.bit_length() - 1
                            for pc in range(0, 1024, 16)})
            got = trace.summary(block_bytes=block_bytes).unique_blocks_touched
            assert got == expected == 1024 // block_bytes

    @pytest.mark.parametrize("bad", [0, -32, 3, 48])
    def test_invalid_block_size_rejected(self, bad):
        trace = Trace("t", [Instr(pc=0, op=OP_INT)])
        with pytest.raises(ValueError, match="power of two"):
            trace.summary(block_bytes=bad)

    def test_other_fields_unaffected(self):
        trace = generate_trace("gcc", 2_000)
        small, big = trace.summary(block_bytes=16), trace.summary(block_bytes=512)
        for field in ("instructions", "loads", "stores", "branches", "calls",
                      "returns", "int_ops", "fp_ops", "unique_load_pcs"):
            assert getattr(small, field) == getattr(big, field)
        assert small.unique_blocks_touched >= big.unique_blocks_touched

    def test_summarize_instructions_consumes_any_iterable(self):
        instrs = (Instr(pc=4 * k, op=OP_LOAD, addr=64 * k) for k in range(10))
        summary = summarize_instructions(instrs, block_bytes=16)
        assert summary.instructions == 10 and summary.loads == 10
        assert summary.unique_blocks_touched == 3  # pcs 0..36 in 16B blocks


# ------------------------------------------------------------------ #
# External-trace experiment
# ------------------------------------------------------------------ #


class TestExternalExperiment:
    def _populate(self, tmp_path) -> Path:
        directory = tmp_path / "traces"
        directory.mkdir()
        write_trace(directory / "alpha.din", generate_trace("gcc", 200))
        write_trace(directory / "beta.csv.gz", generate_trace("swim", 200))
        (directory / "notes.txt").write_text("not a trace\n")
        return directory

    def test_discover_skips_unrecognized(self, tmp_path):
        from repro.experiments import external

        directory = self._populate(tmp_path)
        refs = external.discover_traces(directory)
        assert [Path(parse_trace_ref(ref)[0]).name for ref in refs] == \
            ["alpha.din", "beta.csv.gz"]
        assert all(is_trace_ref(ref) for ref in refs)

    def test_discover_errors(self, tmp_path):
        from repro.experiments import external

        with pytest.raises(ValueError, match="not found"):
            external.discover_traces(tmp_path / "missing")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="registered formats"):
            external.discover_traces(empty)

    def test_render_backend_identical(self, tmp_path):
        from repro.experiments import external
        from repro.experiments.common import ExperimentSettings

        directory = self._populate(tmp_path)
        reports = {}
        for backend in ("reference", "fast"):
            settings = ExperimentSettings(instructions=200, backend=backend)
            reports[backend] = external.render(directory, settings)
        assert reports["reference"] == reports["fast"]
        assert "alpha" in reports["reference"] and "beta" in reports["reference"]
        rows = external.external_rows(
            directory, ExperimentSettings(instructions=200)
        )
        assert [row.trace for row in rows] == ["alpha", "beta"]
        assert all(row.instructions == 200 for row in rows)
        document = json.dumps([row.__dict__ for row in rows])
        assert "alpha.din" in document


class TestNumberParsing:
    def test_zero_padded_decimal_accepted(self, tmp_path):
        champsim = tmp_path / "t.champsim"
        champsim.write_text("0010 L 0020\n0x20 I\n")
        instrs = list(load_trace(champsim))
        assert instrs[0].pc == 10 and instrs[0].addr == 20
        csv = tmp_path / "t.csv"
        csv.write_text("op,pc,addr\nload,0010,0020\n")
        loaded = list(load_trace(csv))
        assert loaded[0].pc == 10 and loaded[0].addr == 20


class TestFullAddressSpace:
    def test_kernel_space_addresses_replay_on_both_backends(self, tmp_path):
        """Addresses >= 2**63 (kernel-space in real dumps) must work in
        both miss-rate paths, not overflow the encoder arrays."""
        path = tmp_path / "k.din"
        lines = [f"0 {0xFFFF_8800_0000_0000 + 32 * k:x}" for k in range(64)]
        path.write_text("\n".join(lines) + "\n")
        geometry = SystemConfig().dcache.geometry()
        reference = measure_miss_rate(load_trace(path), geometry)
        fast = fast_miss_rate(load_trace(path), geometry)
        assert reference == fast and reference.accesses > 0

    @pytest.mark.parametrize(
        "name, content",
        [
            ("t.din", f"0 {1 << 64:x}\n"),
            ("t.champsim", f"0x1000 L {1 << 64:#x}\n"),
            ("t.csv", f"op,addr\nload,{1 << 64:#x}\n"),
            ("t2.csv", "op,addr\nload,-5\n"),
        ],
    )
    def test_out_of_range_addresses_fail_at_parse(self, tmp_path, name, content):
        path = tmp_path / name
        path.write_text(content)
        with pytest.raises(TraceParseError, match="64-bit address space"):
            list(load_trace(path))


def test_measure_miss_rate_memoizes_buffers():
    trace = generate_trace("gcc", 1_000)
    geometry = SystemConfig().dcache.geometry()
    first = measure_miss_rate(trace, geometry)
    memo = getattr(trace, "_functional_mem_ops")
    assert measure_miss_rate(trace, geometry) == first
    assert getattr(trace, "_functional_mem_ops") is memo  # reused, not rebuilt


def test_corrupt_gzip_body_is_a_parse_error(tmp_path):
    """An intact gzip header with a mangled deflate body (zlib.error,
    not EOFError) must fold into TraceParseError, not a traceback."""
    import gzip

    payload = bytearray(gzip.compress(b"op,addr\n" + b"load,0x100\n" * 500))
    payload[12:16] = b"\xde\xad\xbe\xef"  # corrupt the deflate stream
    bad = tmp_path / "bad.csv.gz"
    bad.write_bytes(bytes(payload))
    with pytest.raises(TraceParseError, match="bad.csv.gz"):
        list(load_trace(bad))


class TestAtomicWrites:
    def test_convert_onto_itself_is_safe(self, tmp_path):
        """write_trace writes a temp sibling and renames, so converting
        a trace onto its own path streams correctly (historical bug:
        the destination was truncated before the source was read)."""
        path = tmp_path / "self.csv"
        source = generate_trace("gcc", 250)
        write_trace(path, source)
        before = [instr_tuple(i) for i in load_trace(path)]
        written = write_trace(path, iter(load_trace(path)))
        assert written == 250
        assert [instr_tuple(i) for i in load_trace(path)] == before

    def test_failed_write_leaves_no_partial_file(self, tmp_path):
        def exploding():
            yield Instr(pc=0, op=OP_INT)
            raise RuntimeError("source went away")

        dst = tmp_path / "out.csv"
        with pytest.raises(RuntimeError):
            write_trace(dst, exploding())
        assert not dst.exists()
        assert list(tmp_path.iterdir()) == []  # temp cleaned up too

    def test_failed_write_preserves_existing_destination(self, tmp_path):
        dst = tmp_path / "keep.din"
        write_trace(dst, generate_trace("gcc", 50))
        before = dst.read_bytes()

        def exploding():
            raise TraceParseError("boom")
            yield  # pragma: no cover

        with pytest.raises(TraceParseError):
            write_trace(dst, exploding())
        assert dst.read_bytes() == before


def test_oversized_csv_field_is_a_parse_error(tmp_path):
    """csv.Error (e.g. a mangled line beyond the field-size limit) folds
    into TraceParseError instead of escaping as a raw exception."""
    bad = tmp_path / "bad.csv"
    bad.write_text('op,addr\n"' + "x" * 140_000 + '\n')
    with pytest.raises(TraceParseError, match="bad.csv"):
        list(load_trace(bad))
