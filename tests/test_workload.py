"""Workload generation: determinism, coherence, and stream behaviour."""

import pytest
from hypothesis import strategies as st

from repro.utils.rng import DeterministicRng
from repro.workload.generator import TraceGenerator, generate_trace
from repro.workload.instr import OP_LOAD, OP_STORE
from repro.workload.profiles import BENCHMARKS, benchmark_names, get_profile
from repro.workload.streams import (
    ChaseStream,
    ConflictStream,
    HotDataLayout,
    ObjectPoolStream,
    ScalarStream,
    WalkStream,
)


class TestProfiles:
    def test_eleven_benchmarks(self):
        assert len(BENCHMARKS) == 11
        assert len(benchmark_names()) == 11

    def test_suites_partition(self):
        assert set(benchmark_names("int")) | set(benchmark_names("fp")) == set(
            benchmark_names()
        )
        assert not set(benchmark_names("int")) & set(benchmark_names("fp"))

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            get_profile("specjbb")

    def test_unknown_suite(self):
        with pytest.raises(ValueError):
            benchmark_names("vector")

    def test_paper_targets_recorded(self):
        for profile in BENCHMARKS.values():
            assert profile.paper_dm_miss_pct > 0
            assert profile.paper_sa4_miss_pct > 0


class TestDeterminism:
    def test_same_trace_twice(self):
        a = generate_trace("gcc", 3000)
        b = generate_trace("gcc", 3000)
        assert [i.pc for i in a] == [i.pc for i in b]
        assert [i.addr for i in a] == [i.addr for i in b]

    def test_salt_changes_trace(self):
        a = generate_trace("gcc", 3000, salt=0)
        b = generate_trace("gcc", 3000, salt=1)
        assert [i.addr for i in a] != [i.addr for i in b]

    def test_benchmarks_differ(self):
        a = generate_trace("gcc", 3000)
        b = generate_trace("go", 3000)
        assert [i.pc for i in a] != [i.pc for i in b]


class TestTraceCoherence:
    @pytest.mark.parametrize("bench", ["gcc", "mgrid", "fpppp"])
    def test_control_flow_coherent(self, bench):
        """Taken targets match the next PC; fallthroughs are sequential."""
        trace = generate_trace(bench, 8000)
        instrs = trace.instructions
        for i in range(len(instrs) - 1):
            current, following = instrs[i], instrs[i + 1]
            if current.is_control:
                if current.taken:
                    assert following.pc == current.target
                else:
                    assert following.pc == current.pc + 4
            else:
                assert following.pc == current.pc + 4

    def test_exact_length(self):
        assert len(generate_trace("li", 5001)) == 5001

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            generate_trace("li", 0)

    def test_loads_have_handles_and_dests(self):
        trace = generate_trace("gcc", 5000)
        for instr in trace:
            if instr.op == OP_LOAD:
                assert instr.dst >= 0
                assert instr.addr > 0
            if instr.op == OP_STORE:
                assert instr.dst == -1

    def test_summary_consistent(self):
        trace = generate_trace("gcc", 5000)
        summary = trace.summary()
        assert summary.instructions == 5000
        assert summary.loads + summary.stores + summary.branches + summary.calls + \
            summary.returns + summary.int_ops + summary.fp_ops == 5000

    def test_calls_and_returns_present(self):
        summary = generate_trace("gcc", 20_000).summary()
        assert summary.calls > 0
        assert summary.returns > 0

    def test_fp_profile_has_fp_ops(self):
        summary = generate_trace("mgrid", 10_000).summary()
        assert summary.fp_ops > summary.instructions * 0.2


class TestStreams:
    def test_scalar_stays_in_block(self):
        rng = DeterministicRng("t")
        stream = ScalarStream(0x1000)
        for _ in range(50):
            assert stream.next_address(rng) >> 5 == 0x1000 >> 5

    def test_walk_is_sequential_and_wraps(self):
        rng = DeterministicRng("t")
        stream = WalkStream(0x1000, 64, stride=8)
        addrs = [stream.next_address(rng) for _ in range(9)]
        assert addrs[:8] == [0x1000 + 8 * i for i in range(8)]
        assert addrs[8] == 0x1000  # wrapped

    def test_walk_rejects_short(self):
        with pytest.raises(ValueError):
            WalkStream(0, 4, stride=8)

    def test_conflict_members_share_position(self):
        stream = ConflictStream(5, [100, 200, 300])
        positions = {(a >> 5) & 0x1FF for a in stream.addresses}
        assert positions == {5}
        tags = {(a >> 5) >> 9 for a in stream.addresses}
        assert len(tags) == 3

    def test_conflict_runs(self):
        rng = DeterministicRng("t")
        stream = ConflictStream(5, [100, 200], run_length=50)
        blocks = [stream.next_address(rng) >> 5 for _ in range(40)]
        assert len(set(blocks)) == 1  # still inside the first run

    def test_conflict_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ConflictStream(5, [100])
        with pytest.raises(ValueError):
            ConflictStream(5, [100, 100])
        with pytest.raises(ValueError):
            ConflictStream(5, [100, 200], run_length=0)

    def test_pool_varies_blocks(self):
        rng = DeterministicRng("t")
        stream = ObjectPoolStream([0x1000, 0x2000, 0x3000])
        blocks = {stream.next_address(rng) >> 5 for _ in range(100)}
        assert len(blocks) == 3

    def test_chase_in_region(self):
        rng = DeterministicRng("t")
        stream = ChaseStream(0x1000, 1024)
        for _ in range(100):
            addr = stream.next_address(rng)
            assert 0x1000 <= addr < 0x1000 + 1024


class TestHotDataLayout:
    def test_positions_unique(self):
        layout = HotDataLayout(DeterministicRng("t"))
        chunk = layout.take_chunk(16)
        blocks = [layout.take_block() for _ in range(100)]
        positions = {(b >> 5) & 0x1FF for b in blocks}
        assert len(positions) == 100  # all distinct
        assert all(p >= 16 for p in positions)  # chunk positions reserved

    def test_exhaustion_raises(self):
        layout = HotDataLayout(DeterministicRng("t"))
        with pytest.raises(RuntimeError):
            for _ in range(600):
                layout.take_block()

    def test_tags_vary(self):
        layout = HotDataLayout(DeterministicRng("t"))
        blocks = [layout.take_block() for _ in range(32)]
        tags = {(b >> 5) >> 9 for b in blocks}
        assert len(tags) > 1


class TestGeneratorInternals:
    def test_stream_pool_matches_counts(self):
        generator = TraceGenerator(get_profile("gcc"))
        profile = generator.profile
        expected = (
            profile.num_scalars + profile.num_pools + profile.num_walks
            + profile.num_conflict_groups + profile.num_chases
        )
        assert len(generator.streams) == expected

    def test_all_memory_sites_bound(self):
        generator = TraceGenerator(get_profile("gcc"))
        from repro.workload.codegen import SLOT_LOAD, SLOT_STORE

        for func in generator.layout.functions:
            for block in func.blocks:
                for slot, stream_id in zip(block.slots, block.stream_ids):
                    if slot in (SLOT_LOAD, SLOT_STORE):
                        assert 0 <= stream_id < len(generator.streams)
