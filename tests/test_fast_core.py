"""Unit tests for the fast core layer: table-state predictors, the
instruction-stream encoding, the deadlock valve, and the core/fetch
wiring.

The cycle-exactness of the whole pipeline is pinned by the differential
suite (``test_differential.py``) and the golden experiments; this module
pins the building blocks in isolation — in particular that every fast
predictor transitions bit-for-bit like its reference counterpart under
randomized event streams, including the aliasing corners (BTB tag
conflicts, RAS overflow/underflow, chooser ties).
"""

from __future__ import annotations

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.ooo import _DEADLOCK_FLOOR, deadlock_limit
from repro.fastsim import FastCore, FastFetchUnit
from repro.fastsim.predictors import (
    FastBranchTargetBuffer,
    FastHybridPredictor,
    FastReturnAddressStack,
)
from repro.predictors.btb import BranchTargetBuffer
from repro.predictors.hybrid import HybridPredictor
from repro.predictors.ras import ReturnAddressStack
from repro.sim.config import CacheLevelConfig, SystemConfig
from repro.sim.simulator import Simulator
from repro.utils.rng import DeterministicRng
from repro.workload.encode import encode_trace
from repro.workload.generator import generate_trace

SMALL = SystemConfig(
    icache=CacheLevelConfig(1, 4, 32, 1),
    dcache=CacheLevelConfig(1, 4, 32, 1),
    l2=CacheLevelConfig(4, 4, 32, 6),
)


# ------------------------------------------------------------------ #
# Predictors: bit-for-bit equivalence under random streams
# ------------------------------------------------------------------ #


def _pc_stream(name: str, count: int = 4_000, pcs: int = 97):
    rng = DeterministicRng(name)
    return [
        (0x1000 + 4 * rng.randint(0, pcs), rng.randint(0, 1) == 1)
        for _ in range(count)
    ]


def test_hybrid_predictor_matches_reference():
    reference = HybridPredictor(
        bimodal_entries=64, gshare_entries=128, history_bits=6, chooser_entries=32
    )
    fast = FastHybridPredictor(
        bimodal_entries=64, gshare_entries=128, history_bits=6, chooser_entries=32
    )
    for pc, taken in _pc_stream("hybrid-equiv"):
        expected = reference.predict(pc)
        reference.train(pc, taken)
        assert fast.predict_train(pc, taken) == expected
    assert fast.lookups == reference.lookups
    assert fast.correct == reference.correct
    assert fast.accuracy == reference.accuracy
    assert fast.history == reference.gshare.history


def test_hybrid_predictor_rejects_non_power_of_two():
    with pytest.raises(ValueError, match="power of two"):
        FastHybridPredictor(bimodal_entries=3)
    with pytest.raises(ValueError, match="power of two"):
        FastHybridPredictor(gshare_entries=100)
    with pytest.raises(ValueError, match="power of two"):
        FastHybridPredictor(chooser_entries=7)


def test_btb_matches_reference_including_tag_conflicts():
    reference = BranchTargetBuffer(entries=16)  # tiny: constant aliasing
    fast = FastBranchTargetBuffer(entries=16)
    rng = DeterministicRng("btb-equiv")
    for _ in range(4_000):
        pc = 0x1000 + 4 * rng.randint(0, 300)
        action = rng.randint(0, 3)
        if action == 0:
            entry = reference.lookup(pc)
            hit = fast.lookup(pc)
            if entry is None:
                assert hit is None
            else:
                assert hit is not None
                assert hit[0] == entry.target
                assert hit[1] == (-1 if entry.way is None else entry.way)
        elif action == 1:
            target = 0x2000 + 4 * rng.randint(0, 500)
            reference.update(pc, target)
            fast.update(pc, target)
        else:
            way = rng.randint(0, 3)
            reference.update_way(pc, way)
            fast.update_way(pc, way)
    assert fast.lookups == reference.lookups
    assert fast.hits == reference.hits
    assert fast.hit_rate == reference.hit_rate


def test_btb_tag_conflict_drops_trained_way():
    """A conflicting install replaces the whole entry, way included."""
    fast = FastBranchTargetBuffer(entries=4)
    fast.update(0x1000, 0x2000)
    fast.update_way(0x1000, 3)
    assert fast.lookup(0x1000) == (0x2000, 3)
    fast.update(0x1000 + 4 * 4, 0x3000)  # same index, different tag
    assert fast.lookup(0x1000) is None
    assert fast.lookup(0x1000 + 4 * 4) == (0x3000, -1)


def test_btb_rejects_non_power_of_two():
    with pytest.raises(ValueError, match="power of two"):
        FastBranchTargetBuffer(entries=12)


def test_ras_matches_reference_with_overflow_and_underflow():
    reference = ReturnAddressStack(depth=4)
    fast = FastReturnAddressStack(depth=4)
    rng = DeterministicRng("ras-equiv")
    for _ in range(2_000):
        if rng.randint(0, 2):  # push-biased so overflow happens often
            addr = 0x4000 + 4 * rng.randint(0, 200)
            way = rng.randint(0, 4) - 1  # -1 sometimes: "no way"
            reference.push(addr, None if way < 0 else way)
            fast.push(addr, way)
        else:
            expected = reference.pop()
            popped = fast.pop()
            if expected is None:
                assert popped is None
            else:
                assert popped is not None
                assert popped[0] == expected[0]
                assert popped[1] == (-1 if expected[1] is None else expected[1])
        assert len(fast) == len(reference)
    assert fast.pushes == reference.pushes
    assert fast.pops == reference.pops
    assert fast.underflows == reference.underflows


def test_ras_rejects_degenerate_depth():
    with pytest.raises(ValueError, match=">= 1"):
        FastReturnAddressStack(depth=0)


# ------------------------------------------------------------------ #
# Instruction-stream encoding
# ------------------------------------------------------------------ #


def test_instr_arrays_match_trace():
    trace = generate_trace("gcc", 3_000, 0)
    encoded = encode_trace(trace)
    encoded.ensure_instr_arrays(trace)
    instrs = trace.instructions
    assert encoded.ops == [i.op for i in instrs]
    assert encoded.pcs == [i.pc for i in instrs]
    assert encoded.dsts == [i.dst for i in instrs]
    assert encoded.src1s == [i.src1 for i in instrs]
    assert encoded.src2s == [i.src2 for i in instrs]
    assert encoded.daddrs == [i.addr for i in instrs]
    assert encoded.takens == [i.taken for i in instrs]
    assert encoded.targets == [i.target for i in instrs]
    assert encoded.xors == [i.xor_handle for i in instrs]


def test_instr_arrays_are_idempotent_and_iblocks_memoized():
    trace = generate_trace("swim", 2_000, 0)
    encoded = encode_trace(trace)
    encoded.ensure_instr_arrays(trace)
    ops = encoded.ops
    encoded.ensure_instr_arrays(trace)
    assert encoded.ops is ops
    blocks = encoded.iblocks(5)
    assert encoded.iblocks(5) is blocks
    assert blocks == [pc >> 5 for pc in encoded.pcs]
    assert encoded.iblocks(6) == [pc >> 6 for pc in encoded.pcs]


def test_iblocks_requires_instr_arrays():
    trace = generate_trace("swim", 500, 0)
    encoded = encode_trace(trace)
    if encoded.pcs is not None:
        pytest.skip("trace memo already carries instruction arrays")
    with pytest.raises(RuntimeError, match="ensure_instr_arrays"):
        encoded.iblocks(5)


# ------------------------------------------------------------------ #
# Deadlock valve
# ------------------------------------------------------------------ #


def test_deadlock_limit_scales_with_trace_length():
    assert deadlock_limit(0) == _DEADLOCK_FLOOR
    assert deadlock_limit(60_000) > deadlock_limit(6_000) > _DEADLOCK_FLOOR
    # Ten million instructions must not be treated as a deadlock just
    # for being long (the old fixed valve could, in principle).
    assert deadlock_limit(10_000_000) >= 8 * 10_000_000


def test_fast_core_raises_on_genuine_deadlock(monkeypatch):
    """A scheduler bug (a ROB head that never completes) still fails
    loudly in the fast core, valve scaling notwithstanding."""
    import repro.fastsim.core as fast_core_module

    monkeypatch.setattr(fast_core_module, "deadlock_limit", lambda n: 50)
    trace = generate_trace("gcc", 300, 0)
    simulator = Simulator(SMALL, backend="fast")

    class NeverCompletes:
        """D-cache stub whose loads complete in the unreachable future."""

        def __init__(self, inner):
            self.inner = inner

        def load(self, pc, addr, xor_handle=0):
            outcome = self.inner.load(pc, addr, xor_handle)
            return type(outcome)(
                hit=outcome.hit, latency=1 << 33, kind=outcome.kind, way=outcome.way
            )

        def store(self, pc, addr):
            return self.inner.store(pc, addr)

    from repro.cpu.stats import CoreStats

    stats = CoreStats()
    fetch_unit = FastFetchUnit(trace, simulator.icache, SMALL.core, stats)
    core = FastCore(SMALL.core, fetch_unit, NeverCompletes(simulator.dcache), stats)
    with pytest.raises(RuntimeError, match="core deadlock"):
        core.run()


# ------------------------------------------------------------------ #
# Wiring
# ------------------------------------------------------------------ #


def test_fast_core_drives_reference_icache_fallback():
    """A plugin i-cache policy drops that side to the reference engine;
    the fast fetch unit must drive it through the outcome adapter and
    stay byte-identical."""
    from repro.core.icache import ICacheEngine
    from repro.core.icache_policy import ICachePolicy, IFetchWayPredictor
    from repro.core.registry import register_policy, unregister_policy

    @register_policy("fallback_fetch", side="icache", label="Fallback fetch")
    class FallbackFetchPolicy(ICachePolicy):
        name = "fallback_fetch"
        way_predict = True

        def make_predictor(self):
            return IFetchWayPredictor(64)

    try:
        config = SMALL.with_icache_policy("fallback_fetch")
        simulator = Simulator(config, backend="fast")
        assert isinstance(simulator.icache, ICacheEngine)
        trace = generate_trace("gcc", 2_000, 0)
        reference = Simulator(config, backend="reference").run(trace).to_flat()
        fast = Simulator(config, backend="fast").run(trace).to_flat()
        assert reference == fast
    finally:
        unregister_policy("fallback_fetch", side="icache")


def test_fast_backend_selects_fast_core_path():
    """backend='fast' must not instantiate the reference pipeline."""
    import repro.sim.simulator as simulator_module

    trace = generate_trace("gcc", 1_500, 0)
    result = {}

    class Exploding(simulator_module.OutOfOrderCore):
        def __init__(self, *args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("reference core built under backend='fast'")

    original = simulator_module.OutOfOrderCore
    simulator_module.OutOfOrderCore = Exploding
    try:
        result["fast"] = Simulator(SMALL, backend="fast").run(trace)
    finally:
        simulator_module.OutOfOrderCore = original
    result["reference"] = Simulator(SMALL, backend="reference").run(trace)
    assert result["fast"].to_flat() == result["reference"].to_flat()


def test_fast_core_defaults_stats():
    trace = generate_trace("gcc", 1_000, 0)
    simulator = Simulator(SMALL, backend="fast")
    from repro.cpu.stats import CoreStats

    fetch_unit = FastFetchUnit(trace, simulator.icache, CoreConfig(), CoreStats())
    core = FastCore(CoreConfig(), fetch_unit, simulator.dcache)
    assert isinstance(core.stats, CoreStats)
    assert not fetch_unit.done
    core.run()
    assert fetch_unit.done


def test_fresh_predictor_ratios_are_zero():
    assert FastHybridPredictor().accuracy == 0.0
    assert FastBranchTargetBuffer().hit_rate == 0.0
    assert len(FastReturnAddressStack()) == 0
