"""Test-suite fixtures: small geometries, models, and traces."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.energy.cactilite import CactiLite
from repro.energy.ledger import EnergyLedger
from repro.energy.tables import PredictionStructureEnergy
from repro.sim.config import SystemConfig


@pytest.fixture
def geometry16k4w():
    """The paper's reference L1 geometry."""
    return CacheGeometry(16 * 1024, 4, 32)


@pytest.fixture
def tiny_geometry():
    """A 4-set, 2-way toy cache for exhaustive behavioural tests."""
    return CacheGeometry(256, 2, 32)


@pytest.fixture
def energy16k4w(geometry16k4w):
    """Energy model for the reference geometry."""
    return CactiLite().energy_model(geometry16k4w)


@pytest.fixture
def pred_energy():
    """Paper-sized prediction structure energies."""
    return PredictionStructureEnergy.build()


@pytest.fixture
def ledger():
    """Fresh energy ledger."""
    return EnergyLedger()


@pytest.fixture
def base_config():
    """The paper's Table 1 baseline system."""
    return SystemConfig()
