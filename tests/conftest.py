"""Test-suite fixtures: small geometries, models, and traces.

Also pins the Hypothesis profile for the differential property suite:
the default ``ci`` profile is fully deterministic (``derandomize=True``,
no deadline), so property tests cannot flake in CI; set
``HYPOTHESIS_PROFILE=dev`` locally to explore with random seeds.
"""

import os

import pytest

from repro.cache.geometry import CacheGeometry
from repro.energy.cactilite import CactiLite
from repro.energy.ledger import EnergyLedger
from repro.energy.tables import PredictionStructureEnergy
from repro.sim.config import SystemConfig

try:
    from hypothesis import HealthCheck
    from hypothesis import settings as hypothesis_settings

    hypothesis_settings.register_profile(
        "ci",
        deadline=None,  # simulation examples vary wildly in wall-clock
        derandomize=True,  # fixed example stream: no CI flakes
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.register_profile(
        "dev",
        deadline=None,
        max_examples=50,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    pass


def pytest_addoption(parser):
    """``--update-golden`` regenerates tests/golden/ snapshots in place."""
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden experiment snapshots instead of diffing them",
    )


@pytest.fixture
def geometry16k4w():
    """The paper's reference L1 geometry."""
    return CacheGeometry(16 * 1024, 4, 32)


@pytest.fixture
def tiny_geometry():
    """A 4-set, 2-way toy cache for exhaustive behavioural tests."""
    return CacheGeometry(256, 2, 32)


@pytest.fixture
def energy16k4w(geometry16k4w):
    """Energy model for the reference geometry."""
    return CactiLite().energy_model(geometry16k4w)


@pytest.fixture
def pred_energy():
    """Paper-sized prediction structure energies."""
    return PredictionStructureEnergy.build()


@pytest.fixture
def ledger():
    """Fresh energy ledger."""
    return EnergyLedger()


@pytest.fixture
def base_config():
    """The paper's Table 1 baseline system."""
    return SystemConfig()
