"""Property-based tests on the policy engines.

The invariants here are the paper's energy/latency contracts: whatever
the access pattern, per-policy bounds on probes, latency, and energy
must hold.
"""

from hypothesis import given, settings, strategies as st


from tests.test_policies import make_engine

# Access pattern: (pc_index, block_index) pairs over a small space so
# hits, misses, conflicts, and aliasing all occur.
ACCESSES = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 63)),
    min_size=1,
    max_size=150,
)


def drive(engine, pattern):
    outcomes = []
    for pc_index, block_index in pattern:
        outcomes.append(engine.load(0x400 + pc_index * 4, block_index * 32, block_index))
    return outcomes


class TestEngineInvariants:
    @settings(max_examples=25, deadline=None)
    @given(pattern=ACCESSES)
    def test_parallel_reads_n_ways_per_load(self, pattern):
        engine = make_engine("parallel")
        drive(engine, pattern)
        assert engine.stats.data_way_reads == 4 * len(pattern)

    @settings(max_examples=25, deadline=None)
    @given(pattern=ACCESSES)
    def test_single_way_policies_read_at_most_two(self, pattern):
        """Way-predicted/DM loads read 1 way, 2 on mispredict — never more."""
        for kind in ("waypred_pc", "seldm_waypred", "oracle"):
            engine = make_engine(kind)
            outcomes = drive(engine, pattern)
            hits = sum(o.hit for o in outcomes)
            parallel_fallbacks = engine.stats.access_kinds.get("parallel", 0)
            max_reads = 2 * len(pattern) + 2 * parallel_fallbacks  # generous bound
            assert engine.stats.data_way_reads <= max_reads

    @settings(max_examples=25, deadline=None)
    @given(pattern=ACCESSES)
    def test_latency_bounds(self, pattern):
        """Hit latency is base or base+1; miss adds at least L2 latency."""
        for kind in ("parallel", "sequential", "waypred_pc", "seldm_sequential"):
            engine = make_engine(kind)
            for outcome in drive(engine, pattern):
                if outcome.hit:
                    assert 1 <= outcome.latency <= 2
                else:
                    assert outcome.latency >= 1 + 12

    @settings(max_examples=25, deadline=None)
    @given(pattern=ACCESSES)
    def test_energy_monotone_nonnegative(self, pattern):
        engine = make_engine("seldm_waypred")
        last = 0.0
        for pc_index, block_index in pattern:
            engine.load(0x400 + pc_index * 4, block_index * 32)
            total = engine.ledger.total()
            assert total >= last
            last = total

    @settings(max_examples=25, deadline=None)
    @given(pattern=ACCESSES)
    def test_kinds_partition_loads(self, pattern):
        """Every load is classified into exactly one access kind."""
        for kind in ("parallel", "sequential", "waypred_pc", "seldm_waypred"):
            engine = make_engine(kind)
            drive(engine, pattern)
            assert sum(engine.stats.access_kinds.values()) == len(pattern)

    @settings(max_examples=25, deadline=None)
    @given(pattern=ACCESSES)
    def test_oracle_never_mispredicts(self, pattern):
        engine = make_engine("oracle")
        drive(engine, pattern)
        assert engine.stats.second_probes == 0
        assert engine.stats.correct_predictions == engine.stats.predictions

    @settings(max_examples=25, deadline=None)
    @given(pattern=ACCESSES)
    def test_hit_miss_identical_across_policies(self, pattern):
        """Policies that never force placement see identical hit/miss
        streams (probe scheduling must not change functional behaviour)."""
        reference = None
        for kind in ("parallel", "sequential", "waypred_pc", "oracle"):
            engine = make_engine(kind)
            hits = tuple(o.hit for o in drive(engine, pattern))
            if reference is None:
                reference = hits
            else:
                assert hits == reference, kind

    @settings(max_examples=15, deadline=None)
    @given(pattern=ACCESSES)
    def test_parallel_energy_dominates_oracle(self, pattern):
        """Parallel access can never be cheaper than perfect prediction."""
        parallel = make_engine("parallel")
        oracle = make_engine("oracle")
        drive(parallel, pattern)
        drive(oracle, pattern)
        assert parallel.ledger.get("l1_dcache") >= oracle.ledger.get("l1_dcache") - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(pattern=ACCESSES)
    def test_stats_accounting_consistent(self, pattern):
        engine = make_engine("seldm_waypred")
        drive(engine, pattern)
        stats = engine.stats
        assert stats.loads == len(pattern)
        assert stats.load_hits <= stats.loads
        assert stats.correct_predictions <= stats.predictions
        assert stats.fills >= stats.load_misses * 0  # fills happen on misses
        assert stats.evictions <= stats.fills
