"""Calibration tests: the workload reproduces the paper's observables.

These are the contract between the synthetic workload and the paper:
Table 4 orderings/bands, prediction-accuracy orderings (Figure 5), and
the selective-DM access mix (Figure 6).  They use moderately sized
traces, so this file is the slowest in the suite.
"""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.sim.config import SystemConfig
from repro.sim.functional import measure_miss_rate
from repro.sim.runner import get_trace, run_benchmark
from repro.utils.statsutil import arithmetic_mean
from repro.workload.profiles import benchmark_names, get_profile

N_FUNCTIONAL = 60_000
N_PIPELINE = 20_000


@pytest.fixture(scope="module")
def miss_rates():
    """Measured DM and 4-way miss rates for all applications."""
    dm_geometry = CacheGeometry(16 * 1024, 1, 32)
    sa_geometry = CacheGeometry(16 * 1024, 4, 32)
    rates = {}
    for name in benchmark_names():
        trace = get_trace(name, N_FUNCTIONAL)
        rates[name] = (
            measure_miss_rate(trace, dm_geometry).miss_rate * 100,
            measure_miss_rate(trace, sa_geometry).miss_rate * 100,
        )
    return rates


class TestTable4Calibration:
    def test_sa_rates_near_paper(self, miss_rates):
        for name, (_dm, sa) in miss_rates.items():
            paper = get_profile(name).paper_sa4_miss_pct
            assert abs(sa - paper) <= max(2.5, 0.6 * paper), (name, sa, paper)

    def test_dm_exceeds_sa(self, miss_rates):
        for name, (dm, sa) in miss_rates.items():
            if name == "swim":  # the paper's own inversion case
                continue
            assert dm > sa, (name, dm, sa)

    def test_swim_is_extreme(self, miss_rates):
        sa_rates = {name: sa for name, (_dm, sa) in miss_rates.items()}
        assert max(sa_rates, key=sa_rates.get) == "swim"
        assert sa_rates["swim"] > 15.0

    def test_fpppp_nearly_conflict_free_in_4way(self, miss_rates):
        _dm, sa = miss_rates["fpppp"]
        assert sa < 2.0
        dm, _sa = miss_rates["fpppp"]
        assert dm - sa > 3.0  # big DM gap: fpppp is conflict-dominated

    def test_functional_load_rates_subset(self):
        trace = get_trace("gcc", N_FUNCTIONAL)
        result = measure_miss_rate(trace, CacheGeometry(16 * 1024, 4, 32))
        assert 0 <= result.load_miss_rate <= 1
        assert result.load_accesses < result.accesses

    def test_warmup_fraction_validation(self):
        trace = get_trace("li", 2000)
        with pytest.raises(ValueError):
            measure_miss_rate(trace, CacheGeometry(16 * 1024, 4, 32), warmup_fraction=1.0)


class TestPredictionAccuracyCalibration:
    @pytest.fixture(scope="class")
    def accuracies(self):
        pc_cfg = SystemConfig().with_dcache_policy("waypred_pc")
        xor_cfg = SystemConfig().with_dcache_policy("waypred_xor")
        pc, xor = {}, {}
        for name in benchmark_names():
            pc[name] = run_benchmark(name, pc_cfg, N_PIPELINE).dcache.prediction_accuracy
            xor[name] = run_benchmark(name, xor_cfg, N_PIPELINE).dcache.prediction_accuracy
        return pc, xor

    def test_xor_beats_pc_on_average(self, accuracies):
        pc, xor = accuracies
        assert arithmetic_mean(xor.values()) > arithmetic_mean(pc.values()) - 0.01

    def test_mean_accuracies_in_band(self, accuracies):
        pc, xor = accuracies
        # Paper: PC ~60%, XOR ~70%.  Accept generous bands around them.
        assert 0.5 < arithmetic_mean(pc.values()) < 0.92
        assert 0.55 < arithmetic_mean(xor.values()) < 0.95

    def test_high_miss_fp_apps_have_low_xor_accuracy(self, accuracies):
        _pc, xor = accuracies
        ranked = sorted(xor, key=xor.get)
        assert set(ranked[:3]) & {"applu", "mgrid", "swim"}


class TestSelectiveDmCalibration:
    def test_majority_direct_mapped(self):
        cfg = SystemConfig().with_dcache_policy("seldm_waypred")
        fractions = []
        for name in benchmark_names():
            result = run_benchmark(name, cfg, N_PIPELINE)
            fractions.append(result.dcache.kind_fraction("direct_mapped"))
        # Paper: ~77% mean; "more than 60% ... even for applications
        # requiring set-associativity".
        assert arithmetic_mean(fractions) > 0.6
        assert min(fractions) > 0.4

    def test_mgrid_nearly_all_non_conflicting(self):
        cfg = SystemConfig().with_dcache_policy("seldm_waypred")
        result = run_benchmark("mgrid", cfg, N_PIPELINE)
        # Paper: "over 99% of cache accesses are nonconflicting" for mgrid.
        assert result.dcache.kind_fraction("direct_mapped") > 0.9
