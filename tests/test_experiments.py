"""Experiment-harness tests: registry, rendering, and small-scale runs."""

import pytest

from repro.experiments.common import (
    ExperimentSettings,
    MetricRow,
    format_bar,
    format_table,
    mean_row,
    settings_from_env,
)
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    table3_rows,
)

SMALL = ExperimentSettings(instructions=6_000, benchmarks=("gcc", "swim"))


class TestRegistry:
    def test_all_thirteen_registered(self):
        ids = list_experiments()
        assert len(ids) == 13
        for expected in ("table3", "table4", "table5", "fig4", "fig11"):
            assert expected in ids

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")


class TestSettings:
    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert settings_from_env().instructions == 6_000

    def test_env_benchmarks(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "gcc,swim")
        assert settings_from_env().benchmarks == ("gcc", "swim")

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_BENCHMARKS", raising=False)
        settings = settings_from_env()
        assert settings.instructions == 60_000
        assert len(settings.benchmarks) == 11


class TestFormatting:
    def test_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["33", "4"]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]

    def test_bar(self):
        assert format_bar(0.5, scale=10) == "#####"
        assert format_bar(2.0, scale=10, maximum=1.0) == "#" * 10

    def test_mean_row(self):
        rows = [
            MetricRow("a", "t", 0.4, 0.02, {"x": 1.0}),
            MetricRow("b", "t", 0.6, 0.04, {"x": 3.0}),
        ]
        mean = mean_row(rows, "t")
        assert mean.relative_energy_delay == pytest.approx(0.5)
        assert mean.performance_degradation == pytest.approx(0.03)
        assert mean.extras["x"] == pytest.approx(2.0)


class TestStaticTables:
    def test_table1_contents(self):
        text = render_table1()
        assert "Reorder buffer size" in text and "64" in text

    def test_table2_contents(self):
        assert "swim" in render_table2()

    def test_table3_matches_paper(self):
        for row in table3_rows():
            assert row.measured == pytest.approx(row.paper, abs=0.012)
        assert "0.21" in render_table3()


class TestSmallExperiments:
    """End-to-end runs at tiny scale (2 benchmarks, 6k instructions)."""

    def test_fig04(self):
        from repro.experiments import fig04_sequential

        results = fig04_sequential.run(SMALL)
        mean = results["Sequential"][-1]
        assert mean.relative_energy_delay < 0.6
        assert "Figure 4" in fig04_sequential.render(SMALL)

    def test_fig05(self):
        from repro.experiments import fig05_waypred

        results = fig05_waypred.run(SMALL)
        assert set(results) == {"PC-based", "XOR-based"}
        assert 0.3 < fig05_waypred.xor_timing_ratio() < 0.7

    def test_fig06_breakdown_sums_to_one(self):
        from repro.experiments import fig06_selective_dm

        results = fig06_selective_dm.run(SMALL)
        row = results["Sel-DM+Waypred"][0]
        total = sum(v for k, v in row.extras.items() if k.startswith("kind_"))
        assert total == pytest.approx(1.0, abs=0.01)

    def test_fig10(self):
        from repro.experiments import fig10_icache

        results = fig10_icache.run(SMALL)
        assert results["4-way"][-1].extras["prediction_accuracy"] > 0.8

    def test_fig11(self):
        from repro.experiments import fig11_processor

        results = fig11_processor.run(SMALL)
        assert results["Combined"][-1].extras["relative_energy"] < 1.0

    def test_table5(self):
        from repro.experiments import table5

        rows = table5.run(SMALL)
        assert len(rows) == 6
        assert all(r.ed_savings_pct > 30 for r in rows)


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["--list"]) == 0
        assert "fig11" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["fig99"]) == 2

    def test_runs_table3(self, capsys):
        from repro.cli import main

        assert main(["table3"]) == 0
        assert "0.21" in capsys.readouterr().out
