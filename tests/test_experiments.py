"""Experiment-harness tests: registry, rendering, and small-scale runs."""

import pytest

from repro.experiments.common import (
    ExperimentSettings,
    MetricRow,
    format_bar,
    format_table,
    mean_row,
    settings_from_env,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    experiment_json,
    get_experiment,
    list_experiments,
)
from repro.sweep.engine import SweepEngine
from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    table3_rows,
)

SMALL = ExperimentSettings(instructions=6_000, benchmarks=("gcc", "swim"))


class TestRegistry:
    def test_all_fourteen_registered(self):
        ids = list_experiments()
        assert len(ids) == 14
        for expected in ("table3", "table4", "table5", "fig4", "fig11", "dynamic"):
            assert expected in ids

    def test_list_returns_string_list(self):
        ids = list_experiments()
        assert isinstance(ids, list)
        assert all(isinstance(experiment_id, str) for experiment_id in ids)

    def test_round_trip_every_id_resolves(self):
        for experiment_id in list_experiments():
            experiment = get_experiment(experiment_id)
            assert isinstance(experiment, Experiment)
            assert experiment.experiment_id == experiment_id
            assert experiment is EXPERIMENTS[experiment_id]
            assert callable(experiment.renderer)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_unknown_error_names_the_id(self):
        with pytest.raises(KeyError, match="fig99"):
            get_experiment("fig99")
        with pytest.raises(KeyError, match="no-such-id"):
            get_experiment("no-such-id")


class TestSettings:
    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert settings_from_env().instructions == 6_000

    def test_env_benchmarks(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "gcc,swim")
        assert settings_from_env().benchmarks == ("gcc", "swim")

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_BENCHMARKS", raising=False)
        settings = settings_from_env()
        assert settings.instructions == 60_000
        assert len(settings.benchmarks) == 11


class TestFormatting:
    def test_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["33", "4"]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]

    def test_bar(self):
        assert format_bar(0.5, scale=10) == "#####"
        assert format_bar(2.0, scale=10, maximum=1.0) == "#" * 10

    def test_mean_row(self):
        rows = [
            MetricRow("a", "t", 0.4, 0.02, {"x": 1.0}),
            MetricRow("b", "t", 0.6, 0.04, {"x": 3.0}),
        ]
        mean = mean_row(rows, "t")
        assert mean.relative_energy_delay == pytest.approx(0.5)
        assert mean.performance_degradation == pytest.approx(0.03)
        assert mean.extras["x"] == pytest.approx(2.0)


class TestStaticTables:
    def test_table1_contents(self):
        text = render_table1()
        assert "Reorder buffer size" in text and "64" in text

    def test_table2_contents(self):
        assert "swim" in render_table2()

    def test_table3_matches_paper(self):
        for row in table3_rows():
            assert row.measured == pytest.approx(row.paper, abs=0.012)
        assert "0.21" in render_table3()


class TestSmallExperiments:
    """End-to-end runs at tiny scale (2 benchmarks, 6k instructions)."""

    def test_fig04(self):
        from repro.experiments import fig04_sequential

        results = fig04_sequential.run(SMALL)
        mean = results["Sequential"][-1]
        assert mean.relative_energy_delay < 0.6
        assert "Figure 4" in fig04_sequential.render(SMALL)

    def test_fig05(self):
        from repro.experiments import fig05_waypred

        results = fig05_waypred.run(SMALL)
        assert set(results) == {"PC-based", "XOR-based"}
        assert 0.3 < fig05_waypred.xor_timing_ratio() < 0.7

    def test_fig06_breakdown_sums_to_one(self):
        from repro.experiments import fig06_selective_dm

        results = fig06_selective_dm.run(SMALL)
        row = results["Sel-DM+Waypred"][0]
        total = sum(v for k, v in row.extras.items() if k.startswith("kind_"))
        assert total == pytest.approx(1.0, abs=0.01)

    def test_fig10(self):
        from repro.experiments import fig10_icache

        results = fig10_icache.run(SMALL)
        assert results["4-way"][-1].extras["prediction_accuracy"] > 0.8

    def test_fig11(self):
        from repro.experiments import fig11_processor

        results = fig11_processor.run(SMALL)
        assert results["Combined"][-1].extras["relative_energy"] < 1.0

    def test_table5(self):
        from repro.experiments import table5

        rows = table5.run(SMALL)
        assert len(rows) == 6
        assert all(r.ed_savings_pct > 30 for r in rows)


class TestSweepIntegration:
    """Experiments render identically at any job count, and declare
    their grids as inspectable specs."""

    def test_every_dynamic_experiment_declares_a_spec(self):
        from repro.experiments import (
            fig04_sequential,
            fig05_waypred,
            fig06_selective_dm,
            fig07_cache_size,
            fig08_associativity,
            fig09_latency,
            fig10_icache,
            fig11_processor,
            table5,
            tables,
        )

        for module, expected_name in (
            (fig04_sequential, "fig4"),
            (fig05_waypred, "fig5"),
            (fig06_selective_dm, "fig6"),
            (fig07_cache_size, "fig7"),
            (fig08_associativity, "fig8"),
            (fig09_latency, "fig9"),
            (fig10_icache, "fig10"),
            (fig11_processor, "fig11"),
            (table5, "table5"),
            (tables, "table4"),
        ):
            spec = module.sweep_spec(SMALL)
            assert spec.name == expected_name
            assert len(spec) > 0
            assert all(run.benchmark in SMALL.benchmarks for run in spec)

    def test_shared_baseline_deduplicates(self):
        from repro.experiments import fig06_selective_dm

        spec = fig06_selective_dm.sweep_spec(SMALL)
        # 5 techniques + 1 shared baseline = 6 configs per application.
        assert len(spec) == 6 * len(SMALL.benchmarks)

    def test_render_identical_serial_vs_parallel(self):
        from repro.experiments import fig08_associativity

        serial = fig08_associativity.render(SMALL, SweepEngine(jobs=1))
        parallel = fig08_associativity.render(SMALL, SweepEngine(jobs=4))
        assert serial == parallel

    def test_table4_via_missrate_sweep(self):
        from repro.experiments.tables import sweep_spec, table4_rows

        spec = sweep_spec(SMALL)
        assert all(run.mode == "missrate" for run in spec)
        rows = table4_rows(SMALL, SweepEngine(jobs=1))
        assert [r.benchmark for r in rows] == list(SMALL.benchmarks)
        for row in rows:
            assert 0.0 < row.sa_measured < 100.0

    def test_experiment_json_rows(self):
        document = experiment_json("fig4", SMALL, SweepEngine(jobs=1))
        assert document["experiment"] == "fig4"
        rows = document["rows"]["Sequential"]
        assert rows[-1]["benchmark"] == "MEAN"
        assert 0.0 < rows[-1]["relative_energy_delay"] < 1.0

    def test_experiment_json_static_table(self):
        document = experiment_json("table1", SMALL, SweepEngine(jobs=1))
        assert any("Reorder buffer size" in row[0] for row in document["rows"])


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["--list"]) == 0
        assert "fig11" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["fig99"]) == 2

    def test_runs_table3(self, capsys):
        from repro.cli import main

        assert main(["table3"]) == 0
        assert "0.21" in capsys.readouterr().out

    def test_jobs_flag(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SCALE", "0.1")
        monkeypatch.setenv("REPRO_BENCHMARKS", "gcc,swim")
        assert main(["fig4", "--jobs", "2"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_bad_jobs_rejected(self, capsys):
        from repro.cli import main

        assert main(["table1", "--jobs", "0"]) == 2

    def test_json_output(self, capsys):
        import json

        from repro.cli import main

        assert main(["table3", "--json"]) == 0
        documents = json.loads(capsys.readouterr().out)
        assert documents[0]["experiment"] == "table3"
        assert documents[0]["rows"][0]["paper"] == 1.0

    def test_json_dynamic_experiment(self, capsys, monkeypatch):
        import json

        from repro.cli import main

        monkeypatch.setenv("REPRO_SCALE", "0.1")
        monkeypatch.setenv("REPRO_BENCHMARKS", "gcc,swim")
        assert main(["fig4", "--json"]) == 0
        [document] = json.loads(capsys.readouterr().out)
        assert document["experiment"] == "fig4"
        assert document["rows"]["Sequential"][-1]["benchmark"] == "MEAN"

    def test_sweep_subcommand(self, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--benchmarks", "gcc,swim", "--sizes", "16",
            "--ways", "2,4", "--policies", "seldm_waypred",
            "--instructions", "6000", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "16K/2w/1cyc seldm_waypred" in out
        assert "16K/4w/1cyc seldm_waypred" in out

    def test_sweep_subcommand_json(self, capsys):
        import json

        from repro.cli import main

        assert main([
            "sweep", "--benchmarks", "gcc", "--sizes", "16", "--ways", "4",
            "--policies", "sequential", "--instructions", "6000", "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        [point] = document["points"]
        assert point["label"] == "16K/4w/1cyc sequential"
        assert 0.0 < point["relative_energy_delay"] < 1.0
        assert "gcc" in point["per_benchmark"]

    def test_sweep_unknown_policy(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--policies", "quantum", "--benchmarks", "gcc"]) == 2
