"""Functional cache-array behaviour: geometry, sets, fills, evictions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.sram import SetAssociativeCache


class TestGeometry:
    def test_paper_geometry(self):
        g = CacheGeometry(16 * 1024, 4, 32)
        assert g.num_sets == 128
        assert g.num_blocks == 512
        assert g.tag_bits == 32 - 7 - 5
        assert g.describe() == "16K 4-way 32B"

    def test_direct_mapped_geometry(self):
        g = CacheGeometry(16 * 1024, 1, 32)
        assert g.num_sets == 512
        assert g.fields.way_bits == 0

    @pytest.mark.parametrize("size,assoc,block", [(1000, 4, 32), (16384, 3, 32), (16384, 4, 24)])
    def test_rejects_non_powers(self, size, assoc, block):
        with pytest.raises(ValueError):
            CacheGeometry(size, assoc, block)

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            CacheGeometry(64, 4, 32)


class TestBasicOperation:
    def setup_method(self):
        self.cache = SetAssociativeCache(CacheGeometry(256, 2, 32))  # 4 sets

    def test_cold_miss_then_hit(self):
        assert self.cache.probe(0x100) is None
        self.cache.fill(0x100)
        assert self.cache.probe(0x100) is not None

    def test_same_block_offsets_hit(self):
        self.cache.fill(0x100)
        assert self.cache.probe(0x100 + 31) is not None
        assert self.cache.probe(0x100 + 32) is None

    def test_forced_way_placement(self):
        result = self.cache.fill(0x100, way=1)
        assert result.way == 1
        assert self.cache.way_of(0x100) == 1

    def test_fill_prefers_invalid_way(self):
        self.cache.fill(0x0)
        result = self.cache.fill(0x0 + 4 * 32)  # same set (4 sets * 32B)
        assert result.eviction is None

    def test_eviction_when_full(self):
        # 2-way set: three distinct tags to one set force an eviction.
        stride = 4 * 32  # sets * block = one full index wrap
        self.cache.fill(0 * stride)
        self.cache.fill(1 * stride)
        result = self.cache.fill(2 * stride)
        assert result.eviction is not None
        assert result.eviction.block_addr in (0, stride >> 5)

    def test_lru_eviction_order(self):
        stride = 4 * 32
        self.cache.fill(0)
        self.cache.fill(stride)
        way = self.cache.probe(0)
        self.cache.touch(0, way)  # 0 is now MRU
        result = self.cache.fill(2 * stride)
        assert result.eviction.block_addr == stride >> 5

    def test_refill_resident_block_is_noop_eviction(self):
        self.cache.fill(0x100)
        result = self.cache.fill(0x100, dm_placed=True)
        assert result.eviction is None
        assert self.cache.block_at(0x100).dm_placed

    def test_mark_dirty_and_eviction_reports_it(self):
        stride = 4 * 32
        self.cache.fill(0)
        self.cache.mark_dirty(0)
        self.cache.fill(stride)
        result = self.cache.fill(2 * stride)
        evicted_dirty = result.eviction.dirty
        # The evicted block is the LRU (block 0, dirty).
        assert result.eviction.block_addr == 0
        assert evicted_dirty

    def test_mark_dirty_missing_raises(self):
        with pytest.raises(KeyError):
            self.cache.mark_dirty(0xFACE)

    def test_invalidate(self):
        self.cache.fill(0x100)
        assert self.cache.invalidate(0x100)
        assert self.cache.probe(0x100) is None
        assert not self.cache.invalidate(0x100)

    def test_resident_blocks_counts(self):
        assert self.cache.resident_blocks() == 0
        self.cache.fill(0)
        self.cache.fill(0x1000)
        assert self.cache.resident_blocks() == 2


class TestCapacityInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=300))
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = SetAssociativeCache(CacheGeometry(512, 2, 32))
        for addr in addresses:
            if cache.probe(addr) is None:
                cache.fill(addr)
        assert cache.resident_blocks() <= cache.geometry.num_blocks

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=200))
    def test_most_recent_fill_is_resident(self, addresses):
        cache = SetAssociativeCache(CacheGeometry(512, 2, 32))
        for addr in addresses:
            cache.fill(addr)
            assert cache.probe(addr) is not None

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=0x3FFF), min_size=2, max_size=200))
    def test_direct_mapped_resident_block_is_at_its_index(self, addresses):
        cache = SetAssociativeCache(CacheGeometry(512, 1, 32))
        for addr in addresses:
            cache.fill(addr)
        # In a DM cache every resident block sits in way 0 of its set.
        for addr in addresses:
            way = cache.probe(addr)
            if way is not None:
                assert way == 0


class TestLazySets:
    """Large arrays (the 4096-set L2) materialize sets on first touch."""

    def test_lazy_array_behaves_like_eager(self):
        from repro.cache.sram import _LAZY_SETS_THRESHOLD, _LazySets

        geometry = CacheGeometry(_LAZY_SETS_THRESHOLD * 4 * 32, 4, 32)
        cache = SetAssociativeCache(geometry)
        assert isinstance(cache.sets, _LazySets)
        cache.fill(0x1234)
        assert cache.probe(0x1234) is not None
        assert cache.resident_blocks() == 1  # __iter__ materializes

    def test_lazy_sets_slice_materializes(self):
        from repro.cache.cacheset import CacheSet
        from repro.cache.sram import _LAZY_SETS_THRESHOLD

        geometry = CacheGeometry(_LAZY_SETS_THRESHOLD * 4 * 32, 4, 32)
        cache = SetAssociativeCache(geometry)
        sliced = cache.sets[7:10]
        assert len(sliced) == 3
        assert all(isinstance(s, CacheSet) for s in sliced)

    def test_lazy_sets_reject_bad_replacement_eagerly(self):
        import pytest

        from repro.cache.sram import _LAZY_SETS_THRESHOLD

        geometry = CacheGeometry(_LAZY_SETS_THRESHOLD * 4 * 32, 4, 32)
        with pytest.raises(ValueError, match="unknown replacement"):
            SetAssociativeCache(geometry, replacement="bogus")
