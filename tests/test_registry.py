"""Policy registry tests: plugins, validation, and the equivalence
guarantee that registry-built policies behave exactly like directly
constructed ones."""

import json

import pytest

from repro.core import registry
from repro.core.factory import build_dcache_policy, build_icache_policy, build_policy
from repro.core.icache_policy import ParallelFetchPolicy, WayPredictedFetchPolicy
from repro.core.oracle import OraclePolicy
from repro.core.parallel import ParallelPolicy
from repro.core.policy import DCachePolicy, ProbePlan
from repro.core.registry import (
    iter_policies,
    policy_kinds,
    policy_label,
    register_policy,
    unregister_policy,
)
from repro.core.selective_dm import SelectiveDmPolicy
from repro.core.sequential import SequentialPolicy
from repro.core.spec import DCachePolicySpec, ICachePolicySpec, PolicySpec
from repro.core.waypred import PcWayPredictionPolicy, XorWayPredictionPolicy
from repro.sim.config import SystemConfig
from repro.sim.runner import get_trace
from repro.sim.simulator import Simulator

#: The pre-redesign factory if-chain, inlined as the reference path:
#: kind -> directly constructed policy instance.
_DIRECT_DCACHE = {
    "parallel": lambda: ParallelPolicy(),
    "sequential": lambda: SequentialPolicy(),
    "waypred_pc": lambda: PcWayPredictionPolicy(1024),
    "waypred_xor": lambda: XorWayPredictionPolicy(1024),
    "oracle": lambda: OraclePolicy(),
    "seldm_parallel": lambda: SelectiveDmPolicy("parallel", 1024, 16, 2),
    "seldm_waypred": lambda: SelectiveDmPolicy("waypred", 1024, 16, 2),
    "seldm_sequential": lambda: SelectiveDmPolicy("sequential", 1024, 16, 2),
}


class TestRegistryQueries:
    def test_all_paper_kinds_registered(self):
        assert policy_kinds("dcache") == (
            "parallel", "sequential", "waypred_pc", "waypred_xor", "oracle",
            "seldm_parallel", "seldm_waypred", "seldm_sequential",
            "dri", "levelpred",
        )
        assert policy_kinds("icache") == ("parallel", "waypred")

    def test_unknown_kind_raises_value_error_naming_valid_kinds(self):
        """The old factory raised a bare AssertionError on an unhandled
        kind; the registry path must raise ValueError naming the kinds."""
        with pytest.raises(ValueError, match=r"unknown dcache policy 'magic'.*parallel"):
            registry.get_policy("magic", "dcache")
        with pytest.raises(ValueError, match=r"unknown icache policy 'magic'.*waypred"):
            registry.get_policy("magic", "icache")

    def test_unknown_side_rejected(self):
        with pytest.raises(ValueError, match="unknown policy side"):
            registry.get_policy("parallel", "tlb")
        with pytest.raises(ValueError, match="unknown policy side"):
            policy_kinds("l3")

    def test_labels_owned_by_registrations(self):
        assert policy_label("seldm_waypred", "dcache") == "Sel-DM + Way-pred"
        assert policy_label("waypred", "icache") == "Way-pred (SAWP+BTB+RAS)"
        assert DCachePolicySpec(kind="seldm_waypred").label == "Sel-DM + Way-pred"

    def test_iter_policies_covers_both_sides(self):
        infos = list(iter_policies())
        assert {info.side for info in infos} == {"dcache", "icache"}
        assert len(infos) == len(policy_kinds("dcache")) + len(policy_kinds("icache"))


class TestPolicySpec:
    def test_defaults_filled_and_sorted(self):
        spec = PolicySpec.create("seldm_waypred")
        assert spec.as_dict() == {
            "conflict_threshold": 2, "table_entries": 1024, "victim_entries": 16
        }
        # Spelling a default explicitly yields the same (hash-equal) spec.
        assert spec == PolicySpec.create("seldm_waypred", table_entries=1024)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown dcache policy"):
            DCachePolicySpec(kind="magic")
        with pytest.raises(ValueError, match="unknown icache policy"):
            ICachePolicySpec(kind="magic")

    def test_rejects_undeclared_params(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            PolicySpec.create("parallel", table_entries=64)
        with pytest.raises(ValueError, match="unknown parameter"):
            PolicySpec.create("waypred_pc", sawp_entries=64)

    def test_with_params_and_get(self):
        spec = PolicySpec.create("waypred_pc").with_params(table_entries=256)
        assert spec.get("table_entries") == 256
        assert spec.get("missing", 7) == 7

    def test_describe(self):
        assert PolicySpec.create("parallel").describe() == "parallel"
        assert "table_entries=1024" in PolicySpec.create("waypred_pc").describe()

    def test_side_mismatch_rejected_by_factories(self):
        with pytest.raises(ValueError, match="expected a dcache spec"):
            build_dcache_policy(ICachePolicySpec("waypred"))
        with pytest.raises(ValueError, match="expected an icache spec"):
            build_icache_policy(DCachePolicySpec("parallel"))


class TestBuildEquivalence:
    @pytest.mark.parametrize("kind", sorted(_DIRECT_DCACHE))
    def test_registry_builds_same_type(self, kind):
        policy = build_dcache_policy(DCachePolicySpec(kind=kind))
        direct = _DIRECT_DCACHE[kind]()
        assert type(policy) is type(direct)
        assert policy.name == direct.name

    @pytest.mark.parametrize("kind", sorted(_DIRECT_DCACHE))
    def test_simresult_byte_identical_to_direct_construction(self, kind):
        """Every registered d-cache kind, built via the registry, must
        produce a byte-identical SimResult to the pre-redesign path of
        constructing the policy class directly, on a shared trace."""
        trace = get_trace("gcc", 4000)
        config = SystemConfig().with_dcache_policy(kind)

        via_registry = Simulator(config).run(trace)

        reference = Simulator(config)
        reference.dcache.policy = _DIRECT_DCACHE[kind]()  # bypass the registry
        via_direct = reference.run(trace)

        assert json.dumps(via_registry.to_flat(), sort_keys=True) == json.dumps(
            via_direct.to_flat(), sort_keys=True
        )

    @pytest.mark.parametrize("kind,cls", [
        ("parallel", ParallelFetchPolicy), ("waypred", WayPredictedFetchPolicy)
    ])
    def test_icache_policies_build_via_same_mechanism(self, kind, cls):
        policy = build_icache_policy(ICachePolicySpec(kind))
        assert isinstance(policy, cls)

    def test_icache_waypred_spec_sizes_the_sawp(self):
        policy = build_icache_policy(ICachePolicySpec("waypred", sawp_entries=64))
        assert policy.make_predictor().sawp.entries == 64


class TestPluginRegistration:
    def test_custom_policy_end_to_end(self):
        """A new policy registers, becomes spec/config-selectable, runs
        through the simulator, and unregisters cleanly."""

        @register_policy("always_way0", side="dcache", label="Way 0 only",
                         params={"way": 0})
        class AlwaysWayZero(DCachePolicy):
            name = "always_way0"

            def __init__(self, way: int = 0) -> None:
                self.way = way

            def plan_load(self, pc, addr, xor_handle):
                return ProbePlan(mode="single", way=self.way, kind="way_predicted")

        try:
            assert "always_way0" in policy_kinds("dcache")
            config = SystemConfig().with_dcache_policy("always_way0", way=1)
            assert config.dcache_policy.get("way") == 1
            result = Simulator(config).run(get_trace("gcc", 2000))
            assert result.core.committed == 2000
            assert isinstance(build_policy(config.dcache_policy), AlwaysWayZero)
        finally:
            unregister_policy("always_way0", "dcache")
        assert "always_way0" not in policy_kinds("dcache")

    def test_env_named_plugin_module_imported(self, tmp_path, monkeypatch):
        """REPRO_POLICY_MODULES makes plugin kinds resolve in processes
        whose imports we don't control (CLI, spawn-based workers)."""
        (tmp_path / "env_plugin_policy.py").write_text(
            "from repro.core.policy import DCachePolicy, ProbePlan\n"
            "from repro.core.registry import register_policy\n"
            "@register_policy('env_plugin', side='dcache', label='Env plugin')\n"
            "class EnvPluginPolicy(DCachePolicy):\n"
            "    name = 'env_plugin'\n"
            "    def plan_load(self, pc, addr, xor_handle):\n"
            "        return ProbePlan(mode='parallel', kind='parallel')\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_POLICY_MODULES", "env_plugin_policy")
        monkeypatch.setattr(registry, "_BUILTINS_LOADED", False)
        try:
            assert "env_plugin" in policy_kinds("dcache")
            build_dcache_policy(DCachePolicySpec("env_plugin"))
        finally:
            unregister_policy("env_plugin", "dcache")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("parallel", side="dcache")(ParallelPolicy)

    def test_build_rejects_undeclared_param(self):
        info = registry.get_policy("parallel", "dcache")
        with pytest.raises(ValueError, match="unknown parameter"):
            info.build(bogus=1)
