"""Smoke tests for the calibration helper scripts.

``scripts/calibrate_profiles.py`` (read-only report) and
``scripts/autotune_profiles.py`` (rewrites ``profiles.py`` in place)
used to be exercised only by hand.  Both are driven here as
subprocesses on a tiny grid; the autotune run works on a throwaway
copy of the source tree so the in-place rewrite never touches the
repository.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPTS = REPO / "scripts"

#: Small trace length: enough for every profile to produce nonzero
#: miss rates, small enough to keep the smoke tests quick.
SMOKE_INSTRUCTIONS = "2000"


def _run(script: Path, args, cwd: Path, pythonpath: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(pythonpath)
    env.setdefault("REPRO_DISK_CACHE", "0")
    return subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
        check=True,
        timeout=300,
    )


def test_calibrate_profiles_reports_every_benchmark():
    from repro.workload.profiles import benchmark_names

    result = _run(
        SCRIPTS / "calibrate_profiles.py", [SMOKE_INSTRUCTIONS], REPO, REPO / "src"
    )
    lines = result.stdout.strip().splitlines()
    assert "DM meas" in lines[0] and "SA paper" in lines[0]
    rows = lines[1:]
    names = benchmark_names()
    assert len(rows) == len(names)
    for name, row in zip(names, rows):
        fields = row.split()
        assert fields[0] == name
        # Four numeric columns: measured/paper x DM/SA.
        assert len(fields) == 5
        for value in fields[1:]:
            float(value)


def test_autotune_profiles_rewrites_copy_in_place(tmp_path):
    # The script reloads repro.workload.* from PYTHONPATH and writes to
    # ./src/repro/workload/profiles.py relative to its CWD — point both
    # at a throwaway copy.
    shutil.copytree(
        REPO / "src", tmp_path / "src", ignore=shutil.ignore_patterns("__pycache__")
    )
    profiles_path = tmp_path / "src" / "repro" / "workload" / "profiles.py"
    before = profiles_path.read_text(encoding="utf-8")

    result = _run(
        SCRIPTS / "autotune_profiles.py",
        [SMOKE_INSTRUCTIONS, "1"],
        tmp_path,
        tmp_path / "src",
    )
    assert "--- round 0 ---" in result.stdout

    from repro.workload.profiles import benchmark_names

    for name in benchmark_names():
        assert name in result.stdout  # every profile was (re)tuned

    after = profiles_path.read_text(encoding="utf-8")
    assert after != before, "autotune should nudge chase/conflict weights"
    # The rewrite must leave a syntactically valid module behind.
    compile(after, str(profiles_path), "exec")
    # The repository's own tree is untouched.
    assert (REPO / "src" / "repro" / "workload" / "profiles.py").read_text(
        encoding="utf-8"
    ) == before
