"""Tests for deterministic RNG and statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import DeterministicRng, seed_from_name
from repro.utils.statsutil import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    percent,
    safe_ratio,
)


class TestSeeding:
    def test_same_name_same_seed(self):
        assert seed_from_name("gcc") == seed_from_name("gcc")

    def test_different_names_differ(self):
        assert seed_from_name("gcc") != seed_from_name("go")

    def test_salt_changes_seed(self):
        assert seed_from_name("gcc", 0) != seed_from_name("gcc", 1)

    def test_streams_reproducible(self):
        a = DeterministicRng("x")
        b = DeterministicRng("x")
        assert [a.randint(0, 100) for _ in range(50)] == [
            b.randint(0, 100) for _ in range(50)
        ]

    def test_forks_are_independent_but_stable(self):
        a = DeterministicRng("x").fork("child")
        b = DeterministicRng("x").fork("child")
        c = DeterministicRng("x").fork("other")
        seq_a = [a.uniform() for _ in range(10)]
        assert seq_a == [b.uniform() for _ in range(10)]
        assert seq_a != [c.uniform() for _ in range(10)]


class TestRngHelpers:
    def test_chance_extremes(self):
        rng = DeterministicRng("t")
        assert not rng.chance(0.0)
        assert rng.chance(1.0)

    def test_chance_rate(self):
        rng = DeterministicRng("t")
        hits = sum(rng.chance(0.3) for _ in range(20_000))
        assert 0.27 < hits / 20_000 < 0.33

    def test_geometric_mean_parameter(self):
        rng = DeterministicRng("t")
        draws = [rng.geometric(8.0) for _ in range(20_000)]
        assert 7.0 < sum(draws) / len(draws) < 9.0

    def test_geometric_minimum_one(self):
        rng = DeterministicRng("t")
        assert all(rng.geometric(1.0) == 1 for _ in range(100))

    def test_geometric_maximum_respected(self):
        rng = DeterministicRng("t")
        assert all(rng.geometric(50.0, maximum=5) <= 5 for _ in range(500))

    def test_geometric_rejects_sub_one_mean(self):
        with pytest.raises(ValueError):
            DeterministicRng("t").geometric(0.5)

    def test_weighted_choice_respects_weights(self):
        rng = DeterministicRng("t")
        draws = [rng.weighted_choice(["a", "b"], [0.9, 0.1]) for _ in range(5_000)]
        assert draws.count("a") > 4_000

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            DeterministicRng("t").weighted_choice(["a"], [0.5, 0.5])


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    def test_geometric(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_harmonic(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)

    def test_empty_rejected(self):
        for fn in (arithmetic_mean, geometric_mean, harmonic_mean):
            with pytest.raises(ValueError):
                fn([])

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=20))
    def test_mean_inequality(self, values):
        """Harmonic <= geometric <= arithmetic for positive values."""
        h, g, a = harmonic_mean(values), geometric_mean(values), arithmetic_mean(values)
        assert h <= g + 1e-9
        assert g <= a + 1e-9

    def test_safe_ratio(self):
        assert safe_ratio(1.0, 2.0) == 0.5
        assert safe_ratio(1.0, 0.0) == 0.0
        assert safe_ratio(1.0, 0.0, default=1.0) == 1.0

    def test_percent(self):
        assert percent(0.25) == 25.0
