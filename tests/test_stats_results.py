"""CacheStats / CoreStats / SimResult derived-metric tests."""

import pytest

from repro.cache.stats import CacheStats
from repro.cpu.stats import CoreStats
from repro.sim.results import (
    CoreMetrics,
    EnergyMetrics,
    L1Metrics,
    SimResult,
)


class TestCacheStats:
    def test_empty_safe(self):
        stats = CacheStats()
        assert stats.miss_rate == 0.0
        assert stats.prediction_accuracy == 0.0
        assert stats.kind_fraction("parallel") == 0.0

    def test_derived_counts(self):
        stats = CacheStats(loads=10, stores=5, load_hits=8, store_hits=5)
        assert stats.accesses == 15
        assert stats.hits == 13
        assert stats.misses == 2
        assert stats.load_misses == 2
        assert stats.miss_rate == pytest.approx(2 / 15)
        assert stats.load_miss_rate == pytest.approx(0.2)

    def test_kind_counting(self):
        stats = CacheStats()
        stats.count_kind("parallel", 3)
        stats.count_kind("sequential")
        assert stats.kind_fraction("parallel") == pytest.approx(0.75)

    def test_merge(self):
        a = CacheStats(loads=1, load_hits=1)
        a.count_kind("parallel")
        b = CacheStats(loads=2, load_hits=1, second_probes=1)
        b.count_kind("parallel", 2)
        a.merge(b)
        assert a.loads == 3
        assert a.load_hits == 2
        assert a.second_probes == 1
        assert a.access_kinds["parallel"] == 3


class TestCoreStats:
    def test_ipc(self):
        stats = CoreStats(cycles=100, committed=250)
        assert stats.ipc == pytest.approx(2.5)

    def test_branch_accuracy(self):
        stats = CoreStats(branches=100, branch_mispredicts=8)
        assert stats.branch_accuracy == pytest.approx(0.92)

    def test_mem_ops(self):
        stats = CoreStats(loads=10, stores=4)
        assert stats.mem_ops == 14

    def test_zero_safe(self):
        stats = CoreStats()
        assert stats.ipc == 0.0
        assert stats.branch_accuracy == 1.0


class TestSimResult:
    def _result(self, **sections):
        defaults = dict(
            benchmark="x",
            config_key="k",
            core=CoreMetrics(instructions=100, cycles=50, committed=100),
        )
        defaults.update(sections)
        return SimResult(**defaults)

    def test_ipc(self):
        result = self._result()
        assert result.core.ipc == pytest.approx(2.0)
        assert result.ipc == pytest.approx(2.0)  # headline convenience
        assert result.cycles == 50

    def test_dcache_rates(self):
        result = self._result(
            dcache=L1Metrics(loads=10, stores=10, misses=4, load_misses=3)
        )
        assert result.dcache.miss_rate == pytest.approx(0.2)
        assert result.dcache.load_miss_rate == pytest.approx(0.3)

    def test_energy_includes_prediction_overhead(self):
        result = self._result(
            energy=EnergyMetrics(
                components={"l1_dcache": 10.0, "prediction_dcache": 0.5,
                            "l1_icache": 8.0, "prediction_icache": 0.25}
            )
        )
        assert result.energy.dcache == pytest.approx(10.5)
        assert result.energy.icache == pytest.approx(8.25)

    def test_processor_energy_sums_components(self):
        result = self._result(
            energy=EnergyMetrics(processor={"clock": 5.0, "alu": 2.0})
        )
        assert result.energy.processor_total == pytest.approx(7.0)

    def test_kind_fractions(self):
        result = self._result(dcache=L1Metrics(kinds={"parallel": 3, "mispredicted": 1}))
        assert result.dcache.kind_fraction("parallel") == pytest.approx(0.75)
        assert result.dcache.kind_fraction("sequential") == 0.0

    def test_prediction_accuracy(self):
        result = self._result(dcache=L1Metrics(predictions=10, correct_predictions=7))
        assert result.dcache.prediction_accuracy == pytest.approx(0.7)
