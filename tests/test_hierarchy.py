"""L2 cache and memory hierarchy tests."""


from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import L2Cache, MainMemory, MemoryHierarchy


class TestMainMemory:
    def test_latency_formula(self):
        memory = MainMemory(base_latency=80, cycles_per_chunk=4, chunk_bytes=8)
        # Paper: 80 cycles + 4 per 8 bytes; a 32B block = 80 + 16.
        assert memory.access_latency(32) == 96

    def test_partial_chunk_rounds_up(self):
        memory = MainMemory(base_latency=80, cycles_per_chunk=4, chunk_bytes=8)
        assert memory.access_latency(9) == 80 + 8


class TestL2Cache:
    def setup_method(self):
        self.l2 = L2Cache(CacheGeometry(4096, 8, 32), latency=12)

    def test_miss_goes_to_memory(self):
        result = self.l2.access(0x1000)
        assert not result.hit
        assert result.latency == 12 + 96

    def test_hit_latency(self):
        self.l2.access(0x1000)
        result = self.l2.access(0x1000)
        assert result.hit
        assert result.latency == 12

    def test_store_marks_dirty(self):
        self.l2.access(0x1000, is_store=True)
        assert self.l2.array.block_at(0x1000).dirty

    def test_writeback_installs(self):
        self.l2.writeback(0x2000)
        assert self.l2.array.contains(0x2000)
        assert self.l2.array.block_at(0x2000).dirty

    def test_stats_tracked(self):
        self.l2.access(0x1000)
        self.l2.access(0x1000)
        assert self.l2.stats.loads == 2
        assert self.l2.stats.load_hits == 1


class TestMemoryHierarchy:
    def test_fetch_and_store_paths(self):
        hierarchy = MemoryHierarchy(L2Cache(CacheGeometry(4096, 8, 32), latency=12))
        assert hierarchy.fetch_block(0x100) == 108
        assert hierarchy.fetch_block(0x100) == 12  # now L2-resident
        assert hierarchy.store_block(0x100) == 12

    def test_writeback_absorbed(self):
        hierarchy = MemoryHierarchy(L2Cache(CacheGeometry(4096, 8, 32)))
        hierarchy.absorb_writeback(0x300)
        assert hierarchy.l2.array.contains(0x300)
