"""Calibration helper: measured vs paper Table-4 miss rates per profile."""
import sys
from repro.cache.geometry import CacheGeometry
from repro.sim.functional import measure_miss_rate
from repro.workload import benchmark_names, generate_trace, get_profile

N = int(sys.argv[1]) if len(sys.argv) > 1 else 150_000
dm = CacheGeometry(16 * 1024, 1, 32)
sa = CacheGeometry(16 * 1024, 4, 32)
print(f"{'bench':9s} {'DM meas':>8s} {'DM paper':>9s} {'SA meas':>8s} {'SA paper':>9s}")
for name in benchmark_names():
    p = get_profile(name)
    tr = generate_trace(name, N)
    rdm = measure_miss_rate(tr, dm)
    rsa = measure_miss_rate(tr, sa)
    print(f"{name:9s} {rdm.miss_rate*100:8.1f} {p.paper_dm_miss_pct:9.1f} "
          f"{rsa.miss_rate*100:8.1f} {p.paper_sa4_miss_pct:9.1f}")
