"""One-shot calibration polish: nudge chase/conflict weights toward the
Table-4 targets using measured miss rates, writing profiles.py in place."""
import importlib
import re
import sys

N = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
ROUNDS = int(sys.argv[2]) if len(sys.argv) > 2 else 3
PATH = 'src/repro/workload/profiles.py'

def set_param(text, bench, param, value):
    pattern = re.compile(r'(name="%s",.*?%s=)([0-9.]+)' % (bench, param), re.S)
    m = pattern.search(text)
    assert m, (bench, param)
    return text[:m.start(2)] + f"{value:.4f}" + text[m.end(2):]

for round_idx in range(ROUNDS):
    import repro.workload.profiles as P
    import repro.workload.generator as G
    import repro.workload.codegen  # noqa
    importlib.reload(P)
    # generator captured get_profile/BENCHMARKS at import; reload chain
    importlib.reload(G)
    from repro.cache.geometry import CacheGeometry
    from repro.sim.functional import measure_miss_rate
    dm_g = CacheGeometry(16*1024, 1, 32)
    sa_g = CacheGeometry(16*1024, 4, 32)
    text = open(PATH).read()
    print(f'--- round {round_idx} ---')
    for name in P.BENCHMARKS:
        prof = P.BENCHMARKS[name]
        tr = G.TraceGenerator(prof).generate(N)
        dm = measure_miss_rate(tr, dm_g).miss_rate * 100
        sa = measure_miss_rate(tr, sa_g).miss_rate * 100
        sa_t, dm_t = prof.paper_sa4_miss_pct, prof.paper_dm_miss_pct
        new_chase = max(0.001, prof.chase_weight + (sa_t - sa) / 100 / 0.9)
        gap_err = (dm_t - sa_t) - (dm - sa)
        new_conf = max(0.002, prof.conflict_weight + gap_err / 100)
        print(f'{name:9s} dm={dm:5.1f}/{dm_t:4.1f} sa={sa:5.1f}/{sa_t:4.1f} '
              f'chase {prof.chase_weight:.4f}->{new_chase:.4f} conf {prof.conflict_weight:.4f}->{new_conf:.4f}')
        text = set_param(text, name, 'chase_weight', new_chase)
        text = set_param(text, name, 'conflict_weight', new_conf)
    open(PATH, 'w').write(text)
