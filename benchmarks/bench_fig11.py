"""Figure 11: overall processor energy and energy-delay."""

from conftest import run_once

from repro.experiments import fig11_processor


def test_fig11(benchmark, settings, engine):
    """Combined techniques save several percent of processor energy-delay,
    bounded by the perfect-way-prediction configuration (paper: 8% vs 10%),
    with the L1 caches at 10-16% of processor energy."""
    results = run_once(benchmark, fig11_processor.run, settings, engine)
    print("\n" + fig11_processor.render(settings, engine))
    combined = results["Combined"][-1]
    perfect = results["Perfect"][-1]
    # Real savings exist...
    assert combined.relative_energy_delay < 0.99
    assert combined.extras["relative_energy"] < 0.97
    # ...and perfect way-prediction saves at least as much energy.
    assert perfect.extras["relative_energy"] <= combined.extras["relative_energy"] + 0.005
    # L1 share of processor energy in the paper's band (10-16%), with
    # slack for the lowest-IPC applications.
    assert 0.06 < combined.extras["cache_fraction"] < 0.20
