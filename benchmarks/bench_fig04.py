"""Figure 4: sequential access saves energy but degrades performance."""

from conftest import run_once

from repro.experiments import fig04_sequential


def test_fig04(benchmark, settings, engine):
    """Sequential access: large E-D savings, visible slowdown."""
    results = run_once(benchmark, fig04_sequential.run, settings, engine)
    print("\n" + fig04_sequential.render(settings, engine))
    mean = results["Sequential"][-1]
    # Paper: 68% mean E-D savings; shape check: >50%.
    assert mean.relative_energy_delay < 0.5
    # Paper: 11% mean degradation; our core absorbs more of the +1 cycle
    # (see EXPERIMENTS.md) but the slowdown must be real and positive.
    assert mean.performance_degradation > 0.0
    # Every application saves energy-delay.
    for row in results["Sequential"][:-1]:
        assert row.relative_energy_delay < 0.6, row.benchmark
