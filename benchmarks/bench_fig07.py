"""Figure 7: effect of cache size on selective-DM."""

from conftest import run_once

from repro.experiments import fig07_cache_size


def test_fig07(benchmark, settings, engine):
    """32K savings stay large but do not exceed 16K savings by much
    (paper: 69% -> 63%, because tag/decode grow as a share)."""
    results = run_once(benchmark, fig07_cache_size.run, settings, engine)
    print("\n" + fig07_cache_size.render(settings, engine))
    mean16 = results["16K"][-1]
    mean32 = results["32K"][-1]
    assert mean16.relative_energy_delay < 0.5
    assert mean32.relative_energy_delay < 0.6
    # Savings at 32K <= savings at 16K plus a small tolerance.
    assert mean32.relative_energy_delay >= mean16.relative_energy_delay - 0.03
