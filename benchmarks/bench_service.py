"""Service bench: end-to-end job latency and warm-path throughput.

Three measurements over an embedded service (one worker, serial
engine, private queue/report/run-cache state):

* **cold-sweep** — end-to-end latency of a fresh design-space sweep job
  (submit → execute → report), every run simulated.  This is dominated
  by simulation time; the interesting number is the *overhead* over
  running the identical sweep in-process, which the record reports as
  ``service_overhead_seconds``.
* **warm-sweep** — the same runs submitted under a new job identity
  (benchmark order reversed, so the report differs but the runs are the
  same set): every run resolves from the shared disk cache.  This is
  the steady-state cost of a sweep the cluster has already computed.
* **coalesced** — request throughput for duplicate submissions of a
  finished job (fingerprint match → HTTP round trip plus one SQLite
  lookup, no simulation).  Reported as requests/second.

Run standalone to (re)write ``BENCH_service.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_service.py

or through pytest-benchmark like the other benches.  The record embeds
the environment block so numbers stay comparable across machines.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from conftest import run_once

from repro.service.app import ServiceConfig, ServiceThread
from repro.service.client import ServiceClient
from repro.service.jobs import execute_job
from repro.service.protocol import parse_job_request
from repro.sim import runner

#: The bench sweep: 2 benchmarks x (point + baseline) = 4 runs.
BENCHMARKS = ["gcc", "swim"]
INSTRUCTIONS = 20_000

#: Duplicate submissions timed for the coalesced-throughput figure.
COALESCED_REQUESTS = 50

#: Floor asserted by the pytest bench: coalesced duplicates must stay
#: cheap (no simulation, no report regeneration on the submit path).
COALESCED_RPS_FLOOR = 20.0


def _request(benchmarks) -> dict:
    return {
        "kind": "sweep",
        "benchmarks": list(benchmarks),
        "instructions": INSTRUCTIONS,
    }


class _Isolated:
    """Embedded service over private queue/report/run-cache state."""

    def __init__(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-bench-service-")
        root = Path(self._tmp.name)
        self._previous_cache = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = str(root / "cache")
        runner.clear_caches()
        self.handle = ServiceThread(ServiceConfig(
            port=0,
            db_path=root / "jobs.sqlite",
            reports_dir=root / "reports",
            rate=0.0,  # unlimited: the bench hammers the submit path
        )).start()
        self.client = ServiceClient(port=self.handle.port)

    def close(self):
        self.handle.stop()
        if self._previous_cache is None:
            del os.environ["REPRO_CACHE_DIR"]
        else:
            os.environ["REPRO_CACHE_DIR"] = self._previous_cache
        runner.clear_caches()
        self._tmp.cleanup()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def _submit_and_wait_seconds(client, request) -> float:
    started = time.perf_counter()
    client.submit_and_wait(request, timeout=600)
    return time.perf_counter() - started


def _coalesced_rps(client, request, count: int = COALESCED_REQUESTS) -> float:
    started = time.perf_counter()
    for _ in range(count):
        response = client.submit(request)
        assert response["coalesced"]
    return count / (time.perf_counter() - started)


def measure() -> dict:
    """Time the three service paths; return the full record."""
    with _Isolated() as service:
        cold_seconds = _submit_and_wait_seconds(service.client, _request(BENCHMARKS))
        warm_seconds = _submit_and_wait_seconds(
            service.client, _request(reversed(BENCHMARKS))
        )
        coalesced_rps = _coalesced_rps(service.client, _request(BENCHMARKS))
        warm_job = service.client.jobs()["jobs"][0]

        # The same work in-process (cache dropped): what the service
        # path costs over a direct engine call.
        runner.clear_caches(disk=True)
        spec = parse_job_request(_request(BENCHMARKS))
        started = time.perf_counter()
        outcome = execute_job(spec)
        inprocess_seconds = time.perf_counter() - started

    return {
        "benches": {
            "cold-sweep": {
                "seconds": round(cold_seconds, 4),
                "runs": outcome.runs_done,
                "inprocess_seconds": round(inprocess_seconds, 4),
                "service_overhead_seconds": round(
                    cold_seconds - inprocess_seconds, 4
                ),
            },
            "warm-sweep": {
                "seconds": round(warm_seconds, 4),
                "cache_hits": warm_job["cache_hits"],
                "speedup_over_cold": round(cold_seconds / warm_seconds, 2),
            },
            "coalesced": {
                "requests": COALESCED_REQUESTS,
                "requests_per_second": round(coalesced_rps, 1),
            },
        },
        "workload": {
            "benchmarks": BENCHMARKS,
            "instructions": INSTRUCTIONS,
            "runs": outcome.runs_done,
        },
        "environment": _environment(),
    }


def _environment() -> dict:
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
    }


def test_warm_sweep_resolves_from_cache(benchmark):
    """A new job over already-computed runs is pure cache resolution."""
    with _Isolated() as service:
        service.client.submit_and_wait(_request(BENCHMARKS), timeout=600)
        run_once(
            benchmark,
            _submit_and_wait_seconds,
            service.client,
            _request(reversed(BENCHMARKS)),
        )
        warm_job = service.client.jobs()["jobs"][0]
        assert warm_job["cache_hits"] == warm_job["runs_done"]


def test_coalesced_submission_throughput(benchmark):
    """Duplicate submissions stay cheap: fingerprint lookup, no work."""
    with _Isolated() as service:
        service.client.submit_and_wait(_request(BENCHMARKS), timeout=600)
        rps = run_once(benchmark, _coalesced_rps, service.client,
                       _request(BENCHMARKS))
        print(f"\ncoalesced submissions: {rps:.0f} req/s")
        assert rps >= COALESCED_RPS_FLOOR


def main() -> int:
    record = measure()
    out = Path(__file__).resolve().parent.parent / "BENCH_service.json"
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))
    print(f"wrote {out}")
    ok = record["benches"]["coalesced"]["requests_per_second"] >= COALESCED_RPS_FLOOR
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
