"""Backend bench: reference vs fast, miss-rate mode and full-sim mode.

The repository's performance trajectory in two points:

* **table4-missrate** — Table 4's grid (every benchmark at 60k dynamic
  instructions through the direct-mapped and 4-way 16K d-caches) in
  functional miss-rate mode: the batched per-set replay vs the
  object-dispatch functional model.
* **fig11-sim** — Figure 11's grid (every benchmark through the
  baseline, the combined seldm+waypred technique, and perfect way
  prediction) in full ``mode="sim"``: the array-state out-of-order
  core, fetch unit, and table-state predictors vs the reference
  pipeline.

Each workload is executed once per backend with caching disabled and
traces pre-generated (both backends share the runner's trace memo, so
neither pays generation inside the timed region; the fast backend's
one-time trace/instruction-array encoding *is* timed, as it would be
in a real sweep).

Run standalone to (re)write ``BENCH_backend.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_backend.py

or through pytest-benchmark like the other benches.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from conftest import run_once

from repro.experiments.fig11_processor import comparisons
from repro.experiments.tables import table4_configs, _table4_instructions
from repro.sim import runner
from repro.workload.profiles import benchmark_names

#: Minimum acceptable speedups of the fast backend per workload.
MISSRATE_SPEEDUP_FLOOR = 3.0
SIM_SPEEDUP_FLOOR = 2.0


def _fig11_configs():
    """The figure's unique system configs (baseline + both techniques)."""
    configs = {}
    for label, technique, baseline in comparisons():
        configs.setdefault(baseline.key(), ("Baseline", baseline))
        configs.setdefault(technique.key(), (label, technique))
    return [config for _label, config in configs.values()]


def _missrate_workload():
    """(benchmark, config, instructions, mode) points of the Table-4 sweep."""
    from repro.experiments.common import ExperimentSettings

    instructions = _table4_instructions(ExperimentSettings())
    return [
        (benchmark, config, instructions, "missrate")
        for benchmark in benchmark_names()
        for config in table4_configs()
    ]


def _sim_workload(benchmarks=None, instructions=None):
    """(benchmark, config, instructions, mode) points of the fig11 grid."""
    from repro.experiments.common import ExperimentSettings

    if instructions is None:
        instructions = ExperimentSettings().instructions
    return [
        (benchmark, config, instructions, "sim")
        for benchmark in (benchmarks or benchmark_names())
        for config in _fig11_configs()
    ]


def _time_backend(points, backend: str) -> float:
    started = time.perf_counter()
    for benchmark, config, instructions, mode in points:
        runner.execute(benchmark, config, instructions, mode=mode, backend=backend)
    return time.perf_counter() - started


def _measure_workload(bench_name: str, points) -> dict:
    """Time both backends over one workload; return its record."""
    for benchmark, _config, instructions, _mode in points:
        runner.get_trace(benchmark, instructions)  # pre-generate, shared
    reference_seconds = _time_backend(points, "reference")
    fast_seconds = _time_backend(points, "fast")
    benchmarks = sorted({p[0] for p in points})
    configs = []
    for _benchmark, config, _instructions, _mode in points:
        described = config.describe()
        if described not in configs:
            configs.append(described)
    return {
        "bench": bench_name,
        "workload": {
            "benchmarks": benchmarks,
            "configs": configs,
            "instructions": points[0][2],
            "mode": points[0][3],
            "runs": len(points),
        },
        "reference_seconds": round(reference_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(reference_seconds / fast_seconds, 2),
    }


def measure() -> dict:
    """Time both backends over both workloads; return the full record."""
    return {
        "benches": [
            _measure_workload("table4-missrate", _missrate_workload()),
            _measure_workload("fig11-sim", _sim_workload()),
        ],
        "python": platform.python_version(),
    }


def test_fast_backend_missrate_speedup(benchmark):
    """Fast backend clears the 3x floor on the Table-4 miss-rate sweep."""
    points = _missrate_workload()
    for bench_name, _config, instructions, _mode in points:
        runner.get_trace(bench_name, instructions)
    reference_seconds = _time_backend(points, "reference")
    fast_seconds = run_once(benchmark, lambda: _time_backend(points, "fast"))
    speedup = reference_seconds / fast_seconds
    print(f"\nmissrate: reference {reference_seconds:.3f}s fast {fast_seconds:.3f}s "
          f"speedup {speedup:.2f}x")
    assert speedup >= MISSRATE_SPEEDUP_FLOOR


def test_fast_backend_sim_speedup(benchmark):
    """Fast backend clears the 2x floor on the fig11 full-sim grid
    (subset grid: the pytest bench keeps wall-clock friendly)."""
    points = _sim_workload(benchmarks=("gcc", "swim", "mgrid"), instructions=20_000)
    for bench_name, _config, instructions, _mode in points:
        runner.get_trace(bench_name, instructions)
    reference_seconds = _time_backend(points, "reference")
    fast_seconds = run_once(benchmark, lambda: _time_backend(points, "fast"))
    speedup = reference_seconds / fast_seconds
    print(f"\nsim: reference {reference_seconds:.3f}s fast {fast_seconds:.3f}s "
          f"speedup {speedup:.2f}x")
    assert speedup >= SIM_SPEEDUP_FLOOR


def main() -> int:
    record = measure()
    out = Path(__file__).resolve().parent.parent / "BENCH_backend.json"
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))
    print(f"wrote {out}")
    floors = {"table4-missrate": MISSRATE_SPEEDUP_FLOOR, "fig11-sim": SIM_SPEEDUP_FLOOR}
    ok = all(b["speedup"] >= floors[b["bench"]] for b in record["benches"])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
