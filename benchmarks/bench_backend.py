"""Backend bench: the three kernel tiers, miss-rate and full-sim mode.

The repository's performance trajectory in three points:

* **table4-missrate** — Table 4's grid (every benchmark at 60k dynamic
  instructions through the direct-mapped and 4-way 16K d-caches) in
  functional miss-rate mode, through all three tiers: the
  object-dispatch functional model (``reference``), the batched
  python per-set replay (``fast``, pinned to the python kernels with
  ``REPRO_NO_VECTOR``), and the numpy vector kernels (``vector``).
* **trace-missrate** — the same DM-vs-4-way pair over an *external*
  file-backed workload (a 60k-instruction trace written to ``csv.gz``
  and streamed back via ``trace://``), i.e. the Table-4-style report
  of the trace ingestion subsystem.
* **fig11-sim** — Figure 11's grid (every benchmark through the
  baseline, the combined seldm+waypred technique, and perfect way
  prediction) in full ``mode="sim"``: the array-state out-of-order
  core, fetch unit, and table-state predictors vs the reference
  pipeline.  (``backend="vector"`` runs this same fast pipeline — the
  vector tier only accelerates miss-rate mode — so only two tiers are
  timed here.)

Every tier is timed twice over the same points with caching disabled
and traces pre-loaded:

* **cold** — the per-trace derived streams (flat-array encodings, the
  functional model's memo) are dropped first, so the pass pays
  first-encounter costs: trace iteration/parsing and array encoding.
* **warm** — a second pass with those memos hot: the steady-state
  per-point cost, which is what a sweep over many configurations per
  trace actually amortizes to.

The headline ``speedup`` of each tier is warm-over-warm (cold is also
recorded as ``cold_speedup``); the reference tier memoizes its mem-op
stream the same way, so warm-vs-warm compares like with like.

Run standalone to (re)write ``BENCH_backend.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_backend.py

or through pytest-benchmark like the other benches.  The record embeds
the environment (python, platform, CPU count, numpy version or its
absence) so speedups stay comparable across machines and runs.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from contextlib import contextmanager, nullcontext
from pathlib import Path

import pytest
from conftest import run_once

from repro.experiments.fig11_processor import comparisons
from repro.experiments.tables import table4_configs, _table4_instructions
from repro.fastsim.vector import NO_VECTOR_ENV, vector_enabled
from repro.sim import runner
from repro.workload.formats import is_trace_ref, make_trace_ref, parse_trace_ref, write_trace
from repro.workload.generator import generate_trace
from repro.workload.profiles import benchmark_names

#: Minimum acceptable warm speedups over the reference tier.
MISSRATE_SPEEDUP_FLOOR = 3.0       # python fast tier
VECTOR_SPEEDUP_FLOOR = 10.0        # numpy vector tier
SIM_SPEEDUP_FLOOR = 2.0            # full-sim fast pipeline

#: Per-trace memo attributes a cold pass must drop.
_DERIVED_ATTRS = ("_fastsim_encoded", "_functional_mem_ops")


def _fig11_configs():
    """The figure's unique system configs (baseline + both techniques)."""
    configs = {}
    for label, technique, baseline in comparisons():
        configs.setdefault(baseline.key(), ("Baseline", baseline))
        configs.setdefault(technique.key(), (label, technique))
    return [config for _label, config in configs.values()]


def _missrate_workload():
    """(benchmark, config, instructions, mode) points of the Table-4 sweep."""
    from repro.experiments.common import ExperimentSettings

    instructions = _table4_instructions(ExperimentSettings())
    return [
        (benchmark, config, instructions, "missrate")
        for benchmark in benchmark_names()
        for config in table4_configs()
    ]


def _trace_workload(directory: Path):
    """Table-4-style points over an external (file-backed) trace."""
    path = directory / "external-gcc.csv.gz"
    write_trace(path, generate_trace("gcc", 60_000).instructions)
    ref = make_trace_ref(path)
    return [(ref, config, 0, "missrate") for config in table4_configs()]


def _sim_workload(benchmarks=None, instructions=None):
    """(benchmark, config, instructions, mode) points of the fig11 grid."""
    from repro.experiments.common import ExperimentSettings

    if instructions is None:
        instructions = ExperimentSettings().instructions
    return [
        (benchmark, config, instructions, "sim")
        for benchmark in (benchmarks or benchmark_names())
        for config in _fig11_configs()
    ]


@contextmanager
def _python_kernels():
    """Pin backend resolution to the python tier for the duration."""
    previous = os.environ.get(NO_VECTOR_ENV)
    os.environ[NO_VECTOR_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[NO_VECTOR_ENV]
        else:
            os.environ[NO_VECTOR_ENV] = previous


def _preload_traces(points) -> None:
    for benchmark, _config, instructions, _mode in points:
        runner.get_trace(benchmark, instructions)


def _clear_derived(points) -> None:
    """Drop per-trace derived streams so the next pass runs cold."""
    for benchmark, _config, instructions, _mode in points:
        trace = runner.get_trace(benchmark, instructions)
        for attr in _DERIVED_ATTRS:
            try:
                delattr(trace, attr)
            except AttributeError:
                pass


def _time_backend(points, backend: str) -> float:
    started = time.perf_counter()
    for benchmark, config, instructions, mode in points:
        runner.execute(benchmark, config, instructions, mode=mode, backend=backend)
    return time.perf_counter() - started


def _time_tier(points, backend: str, pin_python: bool = False):
    """(cold, warm) seconds for one tier over one workload."""
    with _python_kernels() if pin_python else nullcontext():
        _clear_derived(points)
        cold = _time_backend(points, backend)
        warm = _time_backend(points, backend)
    return cold, warm


def _best_of(points, backend: str, passes: int = 2) -> float:
    """Minimum of ``passes`` warm timings: the scheduler-noise floor.

    Single-core CI containers jitter individual passes by 10-20%;
    the minimum is the stable estimate the speedup floors assert on.
    """
    return min(_time_backend(points, backend) for _ in range(passes))


def _name(benchmark: str) -> str:
    """Workload display name: temp-dir paths would churn the record."""
    if is_trace_ref(benchmark):
        path, _fmt = parse_trace_ref(benchmark)
        return f"trace://{Path(path).name}"
    return benchmark


def _describe_workload(points) -> dict:
    benchmarks = sorted({_name(p[0]) for p in points})
    configs = []
    for _benchmark, config, _instructions, _mode in points:
        described = config.describe()
        if described not in configs:
            configs.append(described)
    return {
        "benchmarks": benchmarks,
        "configs": configs,
        "instructions": points[0][2],
        "mode": points[0][3],
        "runs": len(points),
    }


def _measure_workload(bench_name: str, points, tiers) -> dict:
    """Time the given tiers over one workload; return its record.

    ``tiers`` is a list of ``(label, backend, pin_python)`` rows; the
    first row is the baseline every speedup is relative to.  A tier
    labelled ``vector`` reports ``null`` when numpy is unavailable.
    """
    _preload_traces(points)
    record = {"bench": bench_name, "workload": _describe_workload(points), "tiers": {}}
    baseline_cold = baseline_warm = None
    for label, backend, pin_python in tiers:
        if label == "vector" and not vector_enabled():
            record["tiers"][label] = None
            continue
        cold, warm = _time_tier(points, backend, pin_python)
        entry = {"cold_seconds": round(cold, 4), "warm_seconds": round(warm, 4)}
        if baseline_cold is None:
            baseline_cold, baseline_warm = cold, warm
        else:
            entry["cold_speedup"] = round(baseline_cold / cold, 2)
            entry["speedup"] = round(baseline_warm / warm, 2)
        record["tiers"][label] = entry
    return record


#: Tier rows for miss-rate benches: the python fast tier is pinned via
#: the opt-out so it cannot silently auto-upgrade to the vector kernels.
_MISSRATE_TIERS = (
    ("reference", "reference", False),
    ("fast", "fast", True),
    ("vector", "vector", False),
)

#: Full-sim runs build the same pipeline for fast and vector, so only
#: the genuinely distinct implementations are timed.
_SIM_TIERS = (
    ("reference", "reference", False),
    ("fast", "fast", False),
)


def _environment() -> dict:
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
    }


def measure() -> dict:
    """Time every tier over every workload; return the full record."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        benches = [
            _measure_workload("table4-missrate", _missrate_workload(), _MISSRATE_TIERS),
            _measure_workload("trace-missrate", _trace_workload(Path(tmp)), _MISSRATE_TIERS),
            _measure_workload("fig11-sim", _sim_workload(), _SIM_TIERS),
        ]
    return {"benches": benches, "environment": _environment()}


def test_fast_backend_missrate_speedup(benchmark):
    """The python fast tier clears the 3x floor on the Table-4 sweep."""
    points = _missrate_workload()
    _preload_traces(points)
    with _python_kernels():
        _clear_derived(points)
        _time_backend(points, "reference")
        reference_seconds = _best_of(points, "reference")
        _time_backend(points, "fast")
        fast_seconds = run_once(benchmark, lambda: _best_of(points, "fast"))
    speedup = reference_seconds / fast_seconds
    print(f"\nmissrate: reference {reference_seconds:.3f}s fast {fast_seconds:.3f}s "
          f"speedup {speedup:.2f}x")
    assert speedup >= MISSRATE_SPEEDUP_FLOOR


def test_vector_backend_missrate_speedup(benchmark):
    """The vector tier clears the 10x floor on the Table-4 sweep."""
    if not vector_enabled():
        pytest.skip("numpy unavailable (or vector tier opted out)")
    points = _missrate_workload()
    _preload_traces(points)
    _clear_derived(points)
    _time_backend(points, "reference")
    reference_seconds = _best_of(points, "reference")
    _time_backend(points, "vector")
    vector_seconds = run_once(benchmark, lambda: _best_of(points, "vector"))
    speedup = reference_seconds / vector_seconds
    print(f"\nmissrate: reference {reference_seconds:.3f}s vector {vector_seconds:.3f}s "
          f"speedup {speedup:.2f}x")
    assert speedup >= VECTOR_SPEEDUP_FLOOR


def test_fast_backend_sim_speedup(benchmark):
    """Fast backend clears the 2x floor on the fig11 full-sim grid
    (subset grid: the pytest bench keeps wall-clock friendly)."""
    points = _sim_workload(benchmarks=("gcc", "swim", "mgrid"), instructions=20_000)
    _preload_traces(points)
    reference_seconds = _best_of(points, "reference")
    fast_seconds = run_once(benchmark, lambda: _best_of(points, "fast"))
    speedup = reference_seconds / fast_seconds
    print(f"\nsim: reference {reference_seconds:.3f}s fast {fast_seconds:.3f}s "
          f"speedup {speedup:.2f}x")
    assert speedup >= SIM_SPEEDUP_FLOOR


def _floor(bench: dict, tier: str) -> bool:
    entry = bench["tiers"].get(tier)
    if entry is None:
        return True  # tier unavailable here: nothing to hold to a floor
    floors = {
        ("table4-missrate", "fast"): MISSRATE_SPEEDUP_FLOOR,
        ("table4-missrate", "vector"): VECTOR_SPEEDUP_FLOOR,
        ("trace-missrate", "fast"): MISSRATE_SPEEDUP_FLOOR,
        ("trace-missrate", "vector"): VECTOR_SPEEDUP_FLOOR,
        ("fig11-sim", "fast"): SIM_SPEEDUP_FLOOR,
    }
    return entry["speedup"] >= floors[(bench["bench"], tier)]


def main() -> int:
    record = measure()
    out = Path(__file__).resolve().parent.parent / "BENCH_backend.json"
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))
    print(f"wrote {out}")
    ok = all(
        _floor(bench, tier)
        for bench in record["benches"]
        for tier in bench["tiers"]
        if tier != "reference"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
