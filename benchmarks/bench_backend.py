"""Backend bench: reference vs fast on the Table-4 miss-rate workload.

The first point on the repository's performance trajectory.  The
workload is exactly Table 4's grid — every benchmark at 60k dynamic
instructions through both the direct-mapped and the 4-way 16K d-cache,
functional miss-rate mode — executed once per backend with caching
disabled, traces pre-generated (both backends share the runner's trace
memo, so neither pays generation inside the timed region; the fast
backend's one-time trace encoding *is* timed, as it would be in a real
sweep).

Run standalone to (re)write ``BENCH_backend.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_backend.py

or through pytest-benchmark like the other benches.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from conftest import run_once

from repro.experiments.tables import _table4_configs, _table4_instructions
from repro.sim import runner
from repro.workload.profiles import benchmark_names

#: Minimum acceptable speedup of the fast backend on this workload.
SPEEDUP_FLOOR = 3.0


def _workload():
    """(benchmark, config) points of the Table-4 miss-rate sweep."""
    from repro.experiments.common import ExperimentSettings

    instructions = _table4_instructions(ExperimentSettings())
    return [
        (benchmark, config, instructions)
        for benchmark in benchmark_names()
        for config in _table4_configs()
    ]


def _run_backend(points, backend: str) -> None:
    for benchmark, config, instructions in points:
        runner.execute(benchmark, config, instructions, mode="missrate", backend=backend)


def _time_backend(points, backend: str) -> float:
    started = time.perf_counter()
    _run_backend(points, backend)
    return time.perf_counter() - started


def measure() -> dict:
    """Time both backends over the Table-4 workload; return the record."""
    points = _workload()
    for benchmark, _config, instructions in points:
        runner.get_trace(benchmark, instructions)  # pre-generate, shared
    reference_seconds = _time_backend(points, "reference")
    fast_seconds = _time_backend(points, "fast")
    return {
        "bench": "table4-missrate",
        "workload": {
            "benchmarks": list(benchmark_names()),
            "configs": [config.describe() for config in _table4_configs()],
            "instructions": points[0][2],
            "mode": "missrate",
            "runs": len(points),
        },
        "reference_seconds": round(reference_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(reference_seconds / fast_seconds, 2),
        "python": platform.python_version(),
    }


def test_fast_backend_speedup(benchmark):
    """Fast backend clears the 3x floor on the Table-4 sweep."""
    points = _workload()
    for bench_name, _config, instructions in points:
        runner.get_trace(bench_name, instructions)
    reference_seconds = _time_backend(points, "reference")
    fast_seconds = run_once(benchmark, lambda: _time_backend(points, "fast"))
    speedup = reference_seconds / fast_seconds
    print(f"\nreference {reference_seconds:.3f}s fast {fast_seconds:.3f}s "
          f"speedup {speedup:.2f}x")
    assert speedup >= SPEEDUP_FLOOR


def main() -> int:
    record = measure()
    out = Path(__file__).resolve().parent.parent / "BENCH_backend.json"
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))
    print(f"wrote {out}")
    return 0 if record["speedup"] >= SPEEDUP_FLOOR else 1


if __name__ == "__main__":
    sys.exit(main())
