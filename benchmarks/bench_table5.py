"""Table 5: the d-cache design-option summary."""

from conftest import run_once

from repro.experiments import table5


def test_table5(benchmark, settings, engine):
    """The paper's bottom line: sel-DM+waypred and sel-DM+sequential give
    the best energy-delay; sel-DM+parallel saves least; sequential's
    performance cost is the largest."""
    rows = run_once(benchmark, table5.run, settings, engine)
    print("\n" + table5.render(settings, engine))
    by_name = {r.technique: r for r in rows}
    best = by_name["Sel-DM + sequential access"]
    assert best.ed_savings_pct > by_name["Sel-DM + parallel access"].ed_savings_pct
    assert by_name["Sel-DM + way-prediction"].ed_savings_pct > \
        by_name["Sel-DM + parallel access"].ed_savings_pct
    # Sequential has the worst performance loss of all options.
    seq_loss = by_name["Sequential-access cache"].perf_loss_pct
    assert seq_loss >= max(
        r.perf_loss_pct for r in rows if r.technique != "Sequential-access cache"
    ) - 0.5
    # All options save more than 50% of d-cache energy-delay.
    for r in rows:
        assert r.ed_savings_pct > 50.0, r.technique
