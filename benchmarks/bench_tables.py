"""Tables 1-3: configuration echoes and the Cacti-lite energy column."""

from conftest import run_once

from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    table3_rows,
)


def test_table1(benchmark):
    """Table 1: system configuration echo."""
    text = run_once(benchmark, render_table1)
    print("\n" + text)
    assert "8 issues per cycle" in text
    assert "16K, 4-way" in text


def test_table2(benchmark):
    """Table 2: the eleven applications."""
    text = run_once(benchmark, render_table2)
    print("\n" + text)
    for name in ("gcc", "go", "li", "m88ksim", "perl", "troff", "vortex",
                 "applu", "fpppp", "mgrid", "swim"):
        assert name in text


def test_table3(benchmark):
    """Table 3: model matches the paper's relative energies closely."""
    rows = run_once(benchmark, table3_rows)
    print("\n" + render_table3())
    for row in rows:
        assert abs(row.measured - row.paper) <= 0.01 + 0.05 * row.paper, row.component
