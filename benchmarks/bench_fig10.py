"""Figure 10: i-cache way prediction across associativities."""

from conftest import run_once

from repro.experiments import fig10_icache


def test_fig10(benchmark, settings, engine):
    """I-cache way prediction: high accuracy, savings grow with ways,
    negligible performance loss (paper: 39%/64%/72%, <0.5% perf)."""
    results = run_once(benchmark, fig10_icache.run, settings, engine)
    print("\n" + fig10_icache.render(settings, engine))
    ed2 = results["2-way"][-1].relative_energy_delay
    ed4 = results["4-way"][-1].relative_energy_delay
    ed8 = results["8-way"][-1].relative_energy_delay
    assert ed2 > ed4 > ed8
    assert ed4 < 0.55
    mean4 = results["4-way"][-1]
    # Prediction covers nearly all fetches with high accuracy.
    assert mean4.extras["prediction_accuracy"] > 0.9
    assert abs(mean4.performance_degradation) < 0.03
    # SAWP + BTB together supply most predictions.
    covered = mean4.extras["kind_sawp_correct"] + mean4.extras["kind_btb_correct"]
    assert covered > 0.8
