"""Figure 9: selective-DM with a 2-cycle base d-cache."""

from conftest import run_once

from repro.experiments import fig09_latency


def test_fig09(benchmark, settings, engine):
    """At 2-cycle base latency the sel-DM savings persist and the
    all-sequential cache degrades performance the most (paper: ~13%)."""
    results = run_once(benchmark, fig09_latency.run, settings, engine)
    print("\n" + fig09_latency.render(settings, engine))
    means = {label: rows[-1] for label, rows in results.items()}
    assert means["Sel-DM+Waypred"].relative_energy_delay < 0.5
    assert means["Sel-DM+Sequential"].relative_energy_delay < 0.5
    # Sequential's slowdown exceeds the sel-DM variants'.
    assert (
        means["Sequential"].performance_degradation
        >= means["Sel-DM+Waypred"].performance_degradation
    )
