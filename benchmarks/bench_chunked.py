"""Chunked-replay bench: serial vs chunk-parallel miss-rate runs.

One large synthetic trace (a ``gcc`` profile stream, big enough that a
serial replay takes a measurable fraction of a second) is replayed
through the miss-rate kernels serially and then chunk-parallel with a
process pool, for both the python ``fast`` tier (pinned via
``REPRO_NO_VECTOR``) and the numpy ``vector`` tier when available.

Two things are recorded per tier:

* **equality** — the chunked run's flat record must be byte-identical
  to the serial one (full-prefix warmup overlap is exact by
  construction; the bench re-checks it at benchmark scale), and the
  attached error-bound report must agree;
* **timing** — serial seconds vs chunked seconds at ``jobs`` worker
  processes.  Fork start-up and per-chunk prefix replay are real
  costs, so the bench asserts an *overhead bound* rather than a
  speedup floor: chunked wall-clock must stay within
  ``OVERHEAD_CEILING``x of serial plus a flat pool-start-up allowance,
  even on a single-core container.  The recorded ``speedup`` is the
  interesting number on real multi-core machines.

Run standalone to (re)write ``BENCH_chunked.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_chunked.py

or through pytest-benchmark like the other benches.
"""

from __future__ import annotations

import json
import os
import platform
import time
from contextlib import nullcontext
from pathlib import Path

import pytest
from conftest import run_once

from repro.fastsim.vector import NO_VECTOR_ENV, vector_enabled
from repro.sim import runner
from repro.sim.config import SystemConfig

#: Chunked wall-clock may not exceed this multiple of serial wall-clock
#: plus the flat pool allowance (full-prefix warmup replay is at worst
#: a constant factor; pool start-up is a fixed cost, so it gets an
#: absolute budget rather than a multiple of a possibly-tiny serial
#: time on single-core containers).
OVERHEAD_CEILING = 3.0
POOL_STARTUP_ALLOWANCE = 0.75  # seconds

#: Benchmark workload: one long profile stream in miss-rate mode.
BENCHMARK = "gcc"
INSTRUCTIONS = 400_000

_DERIVED_ATTRS = ("_fastsim_encoded", "_functional_mem_ops")


def _jobs() -> int:
    return max(2, min(4, os.cpu_count() or 1))


def _pin_python(pin: bool):
    if not pin:
        return nullcontext()

    class _Pin:
        def __enter__(self):
            self._previous = os.environ.get(NO_VECTOR_ENV)
            os.environ[NO_VECTOR_ENV] = "1"

        def __exit__(self, *exc):
            if self._previous is None:
                del os.environ[NO_VECTOR_ENV]
            else:
                os.environ[NO_VECTOR_ENV] = self._previous

    return _Pin()


def _clear_derived() -> None:
    trace = runner.get_trace(BENCHMARK, INSTRUCTIONS)
    for attr in _DERIVED_ATTRS:
        try:
            delattr(trace, attr)
        except AttributeError:
            pass


def _run(backend: str, chunks: int = 0, chunk_jobs: int = 1):
    config = SystemConfig()
    started = time.perf_counter()
    result = runner.execute(
        BENCHMARK, config, INSTRUCTIONS, mode="missrate", backend=backend,
        chunks=chunks, chunk_jobs=chunk_jobs,
    )
    return result, time.perf_counter() - started


def _best_of(backend: str, chunks: int = 0, chunk_jobs: int = 1,
             passes: int = 2) -> float:
    """Minimum of ``passes`` warm timings: the scheduler-noise floor."""
    return min(
        _run(backend, chunks, chunk_jobs)[1] for _ in range(passes)
    )


def _measure_tier(label: str, backend: str, pin_python: bool) -> dict:
    jobs = _jobs()
    chunks = jobs
    with _pin_python(pin_python):
        _clear_derived()
        serial_result, _ = _run(backend)  # warm the trace memos
        serial_seconds = _best_of(backend)
        chunked_result, _ = _run(backend, chunks=chunks, chunk_jobs=jobs)
        chunked_seconds = _best_of(backend, chunks=chunks, chunk_jobs=jobs)
    identical = chunked_result.to_flat() == serial_result.to_flat()
    report = getattr(chunked_result, runner.CHUNK_REPORT_ATTR, None)
    return {
        "tier": label,
        "chunks": chunks,
        "jobs": jobs,
        "serial_seconds": round(serial_seconds, 4),
        "chunked_seconds": round(chunked_seconds, 4),
        "speedup": round(serial_seconds / chunked_seconds, 2),
        "byte_identical": identical,
        "report_exact": bool(report and report.get("exact")),
        "abs_miss_rate_error": (
            report["sample"]["abs_miss_rate_error"] if report else None
        ),
    }


def _environment() -> dict:
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
    }


def measure() -> dict:
    tiers = [_measure_tier("fast", "fast", pin_python=True)]
    if vector_enabled():
        tiers.append(_measure_tier("vector", "vector", pin_python=False))
    return {
        "bench": "chunked-missrate",
        "workload": {
            "benchmark": BENCHMARK,
            "instructions": INSTRUCTIONS,
            "mode": "missrate",
        },
        "tiers": tiers,
        "environment": _environment(),
    }


def _check(entry: dict) -> bool:
    return (
        entry["byte_identical"]
        and entry["report_exact"]
        and entry["chunked_seconds"]
        <= entry["serial_seconds"] * OVERHEAD_CEILING + POOL_STARTUP_ALLOWANCE
    )


def test_chunked_fast_tier_identical_and_bounded(benchmark):
    """Chunked fast-tier replay: byte-identical, overhead-bounded."""
    entry = run_once(benchmark, lambda: _measure_tier("fast", "fast", True))
    print(f"\nchunked fast: serial {entry['serial_seconds']:.3f}s "
          f"chunked {entry['chunked_seconds']:.3f}s "
          f"speedup {entry['speedup']:.2f}x")
    assert _check(entry)


def test_chunked_vector_tier_identical_and_bounded(benchmark):
    if not vector_enabled():
        pytest.skip("numpy unavailable (or vector tier opted out)")
    entry = run_once(benchmark, lambda: _measure_tier("vector", "vector", False))
    print(f"\nchunked vector: serial {entry['serial_seconds']:.3f}s "
          f"chunked {entry['chunked_seconds']:.3f}s "
          f"speedup {entry['speedup']:.2f}x")
    assert _check(entry)


def main() -> int:
    record = measure()
    out = Path(__file__).resolve().parent.parent / "BENCH_chunked.json"
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))
    print(f"wrote {out}")
    return 0 if all(_check(entry) for entry in record["tiers"]) else 1


if __name__ == "__main__":
    raise SystemExit(main())
