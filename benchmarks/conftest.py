"""Bench-suite configuration.

Benches regenerate the paper's tables/figures; they use small synthetic
traces (scale with ``REPRO_SCALE``) and the on-disk result cache, so the
second run of the suite is fast.  Set ``REPRO_JOBS=N`` to fan each
experiment's run grid over N worker processes.
"""

import pytest

from repro.experiments.common import settings_from_env
from repro.sweep.engine import SweepEngine, default_jobs


@pytest.fixture(scope="session")
def settings():
    """Shared experiment settings (env-driven)."""
    return settings_from_env()


@pytest.fixture(scope="session")
def engine():
    """Shared sweep engine honoring ``REPRO_JOBS``."""
    return SweepEngine(jobs=default_jobs())


def run_once(benchmark, func, *args, **kwargs):
    """pytest-benchmark wrapper: a single timed round (simulations are
    deterministic and expensive; statistical repetition adds nothing)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
