"""Bench-suite configuration.

Benches regenerate the paper's tables/figures; they use small synthetic
traces (scale with ``REPRO_SCALE``) and the on-disk result cache, so the
second run of the suite is fast.
"""

import pytest

from repro.experiments.common import settings_from_env


@pytest.fixture(scope="session")
def settings():
    """Shared experiment settings (env-driven)."""
    return settings_from_env()


def run_once(benchmark, func, *args, **kwargs):
    """pytest-benchmark wrapper: a single timed round (simulations are
    deterministic and expensive; statistical repetition adds nothing)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
