"""Table 4: d-cache miss rates, direct-mapped vs 4-way set-associative."""

from conftest import run_once

from repro.experiments.tables import render_table4, table4_rows


def test_table4(benchmark, settings, engine):
    """DM rates exceed 4-way rates (except swim) and 4-way rates track
    the paper's column."""
    rows = run_once(benchmark, table4_rows, settings, engine)
    print("\n" + render_table4(settings, engine))
    for row in rows:
        if row.benchmark != "swim":
            # The gap selective-DM exploits: DM misses more than 4-way.
            assert row.dm_measured > row.sa_measured, row.benchmark
        # 4-way rates reproduce the paper within a tolerant band.
        assert abs(row.sa_measured - row.sa_paper) <= max(1.5, 0.5 * row.sa_paper), (
            row.benchmark,
            row.sa_measured,
        )
    # Cross-application ordering: swim misses most, by far.
    by_sa = sorted(rows, key=lambda r: r.sa_measured)
    assert by_sa[-1].benchmark == "swim"
