"""Figure 8: effect of associativity on selective-DM."""

from conftest import run_once

from repro.experiments import fig08_associativity


def test_fig08(benchmark, settings, engine):
    """Savings grow with associativity (paper: 38% / 69% / 82%)."""
    results = run_once(benchmark, fig08_associativity.run, settings, engine)
    print("\n" + fig08_associativity.render(settings, engine))
    ed2 = results["2-way"][-1].relative_energy_delay
    ed4 = results["4-way"][-1].relative_energy_delay
    ed8 = results["8-way"][-1].relative_energy_delay
    assert ed2 > ed4 > ed8
    # Rough bands around the paper's 0.62 / 0.31 / 0.18.
    assert 0.35 < ed2 < 0.85
    assert 0.2 < ed4 < 0.55
    assert ed8 < 0.4
