"""Figure 5: PC- vs XOR-based way-prediction."""

from conftest import run_once

from repro.experiments import fig05_waypred


def test_fig05(benchmark, settings, engine):
    """XOR beats PC on accuracy; both save >50% E-D; XOR has the timing
    problem (table lookup a large fraction of cache access time)."""
    results = run_once(benchmark, fig05_waypred.run, settings, engine)
    print("\n" + fig05_waypred.render(settings, engine))
    pc_mean = results["PC-based"][-1]
    xor_mean = results["XOR-based"][-1]
    assert pc_mean.relative_energy_delay < 0.5
    assert xor_mean.relative_energy_delay < 0.5
    # Paper: PC ~60%, XOR ~70% mean accuracy - XOR more accurate.
    assert xor_mean.extras["prediction_accuracy"] > pc_mean.extras["prediction_accuracy"]
    # The fp triad has the lowest XOR accuracy (highest miss rates).
    rows = {r.benchmark: r for r in results["XOR-based"][:-1]}
    if {"swim", "applu"} <= rows.keys():
        accuracies = sorted(
            results["XOR-based"][:-1], key=lambda r: r.extras["prediction_accuracy"]
        )
        lowest_three = {r.benchmark for r in accuracies[:3]}
        assert lowest_three & {"applu", "mgrid", "swim"}
    # Timing constraint (paper: ~48%).
    ratio = fig05_waypred.xor_timing_ratio()
    assert 0.3 < ratio < 0.7
