"""Figure 6 (core figure): selective-DM schemes."""

from conftest import run_once

from repro.experiments import fig06_selective_dm


def test_fig06(benchmark, settings, engine):
    """Sel-DM's key properties:

    * most reads probe only the direct-mapping way;
    * sel-DM+waypred / +sequential reach sequential-class energy-delay
      with far less slowdown than the all-sequential cache;
    * sel-DM+parallel saves the least of the three variants.
    """
    results = run_once(benchmark, fig06_selective_dm.run, settings, engine)
    print("\n" + fig06_selective_dm.render(settings, engine))
    means = {label: rows[-1] for label, rows in results.items()}

    # Majority of reads are direct-mapped (paper: ~77% mean).
    dm_fraction = means["Sel-DM+Waypred"].extras["kind_direct_mapped"]
    assert dm_fraction > 0.6

    # Energy-delay ordering: parallel handler saves least.
    assert (
        means["Sel-DM+Sequential"].relative_energy_delay
        < means["Sel-DM+Parallel"].relative_energy_delay
    )
    assert (
        means["Sel-DM+Waypred"].relative_energy_delay
        < means["Sel-DM+Parallel"].relative_energy_delay
    )

    # Both good variants land below 0.5 relative E-D (paper: 0.27-0.31).
    assert means["Sel-DM+Waypred"].relative_energy_delay < 0.5
    assert means["Sel-DM+Sequential"].relative_energy_delay < 0.5

    # And degrade performance less than the all-sequential cache does
    # per unit of energy saved: their slowdown stays small.
    assert means["Sel-DM+Waypred"].performance_degradation < 0.08
