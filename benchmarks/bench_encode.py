"""Encode-path bench: cold parse+encode vs warm-artifact restore.

The persistent artifact cache exists to amortize the expensive part of
every accelerated run's start-up: parsing the source trace and folding
it into :class:`~repro.workload.encode.EncodedTrace`'s flat arrays.
This bench measures exactly that window, per kernel tier, on the
committed sample trace (``benchmarks/data/bench_gcc_60k.csv.gz``,
60k deterministic ``gcc``-profile instructions):

* **cold** — artifacts disabled: gunzip + CSV parse + encoding passes,
  the price every fresh process used to pay;
* **warm** — the artifact is on disk and the process caches are
  dropped, simulating a new worker/process life: the mem stream and
  block decodes come off the mapped file (``np.frombuffer`` views on
  the numpy tier, ``array.frombytes`` restores on the python tier).

Both legs end with the same kernel-ready state (addrs, load flags,
block ids for the base geometry), and the bench asserts the streams
are byte-identical before trusting the clock.  The acceptance floor:
warm must be at least ``SPEEDUP_FLOOR``x faster than cold on the
python tier and on the numpy tier when available.

Run standalone to (re)write ``BENCH_encode.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_encode.py

or through pytest-benchmark like the other benches.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest
from conftest import run_once

from repro.cache.geometry import CacheGeometry
from repro.fastsim.vector import vector_enabled
from repro.sim import runner
from repro.workload.encode import encode_trace
from repro.workload.formats import make_trace_ref

#: Warm-artifact start-up must beat cold parse+encode by this factor.
SPEEDUP_FLOOR = 3.0

TRACE_FILE = Path(__file__).resolve().parent / "data" / "bench_gcc_60k.csv.gz"

#: The paper's base L1 geometry — the block decode every kernel needs.
GEOMETRY = CacheGeometry(16 * 1024, 4, 32)

_NO_ARTIFACTS_ENV = "REPRO_NO_ARTIFACTS"


def _materialize(encoded, tier: str) -> tuple:
    """Build the kernel-ready streams and return them for checksums."""
    if tier == "vector":
        addrs = encoded.addrs_np()
        is_load = encoded.is_load_np()
        blocks = encoded.blocks_np(GEOMETRY.fields)
        return addrs.tobytes(), is_load.tobytes(), blocks.tobytes()
    addrs = encoded.addrs
    is_load = encoded.is_load
    blocks = encoded.blocks(GEOMETRY.fields)
    return addrs.tobytes(), is_load.tobytes(), tuple(blocks)


def _startup(ref: str, tier: str, artifacts: bool) -> tuple:
    """One process-life worth of start-up: trace -> kernel-ready."""
    runner.clear_caches()
    previous = os.environ.get(_NO_ARTIFACTS_ENV)
    if not artifacts:
        os.environ[_NO_ARTIFACTS_ENV] = "1"
    try:
        started = time.perf_counter()
        trace = runner.get_trace(ref, 0, 0)
        encoded = encode_trace(trace)
        streams = _materialize(encoded, tier)
        elapsed = time.perf_counter() - started
    finally:
        if not artifacts:
            if previous is None:
                del os.environ[_NO_ARTIFACTS_ENV]
            else:
                os.environ[_NO_ARTIFACTS_ENV] = previous
    return elapsed, streams


def _best_of(ref: str, tier: str, artifacts: bool, passes: int = 3):
    """Minimum of ``passes`` timings (scheduler-noise floor)."""
    best, streams = _startup(ref, tier, artifacts)
    for _ in range(passes - 1):
        elapsed, again = _startup(ref, tier, artifacts)
        assert again == streams, "non-deterministic streams"
        best = min(best, elapsed)
    return best, streams


def _measure_tier(tier: str) -> dict:
    ref = make_trace_ref(TRACE_FILE)
    cold_seconds, cold_streams = _best_of(ref, tier, artifacts=False)

    # Publish the artifact the way a real run does — after the kernels
    # computed block decodes, so the warm legs map those sections too —
    # then time fresh process-lives over it.
    runner.clear_caches()
    trace = runner.get_trace(ref, 0, 0)
    _materialize(encode_trace(trace), tier)
    runner._publish_artifact(trace)
    path = runner.ensure_artifact(ref, 0, mode="missrate")
    assert path is not None and path.exists()
    runner.reset_artifact_stats()
    warm_seconds, warm_streams = _best_of(ref, tier, artifacts=True)
    assert runner.artifact_stats()["loads"] >= 1, "warm leg never mapped"
    assert warm_streams == cold_streams, "artifact restore diverged"

    return {
        "tier": tier,
        "cold_seconds": round(cold_seconds, 5),
        "warm_seconds": round(warm_seconds, 5),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "byte_identical": True,  # asserted above
        "artifact_bytes": path.stat().st_size,
    }


def _environment() -> dict:
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
    }


def measure() -> dict:
    tiers = [_measure_tier("fast")]
    if vector_enabled():
        tiers.append(_measure_tier("vector"))
    return {
        "bench": "encode-artifacts",
        "workload": {
            "trace": TRACE_FILE.name,
            "instructions": 60_000,
            "geometry": "16KB/4-way/32B",
        },
        "speedup_floor": SPEEDUP_FLOOR,
        "tiers": tiers,
        "environment": _environment(),
    }


def _check(entry: dict) -> bool:
    return entry["byte_identical"] and entry["speedup"] >= SPEEDUP_FLOOR


def test_encode_fast_tier_warm_artifact_floor(benchmark):
    """Python tier: warm-artifact start-up >= 3x faster than re-encode."""
    entry = run_once(benchmark, lambda: _measure_tier("fast"))
    print(f"\nencode fast: cold {entry['cold_seconds']:.4f}s "
          f"warm {entry['warm_seconds']:.4f}s "
          f"speedup {entry['speedup']:.1f}x")
    assert _check(entry)


def test_encode_vector_tier_warm_artifact_floor(benchmark):
    if not vector_enabled():
        pytest.skip("numpy unavailable (or vector tier opted out)")
    entry = run_once(benchmark, lambda: _measure_tier("vector"))
    print(f"\nencode vector: cold {entry['cold_seconds']:.4f}s "
          f"warm {entry['warm_seconds']:.4f}s "
          f"speedup {entry['speedup']:.1f}x")
    assert _check(entry)


def main() -> int:
    record = measure()
    out = Path(__file__).resolve().parent.parent / "BENCH_encode.json"
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))
    failed = [entry["tier"] for entry in record["tiers"] if not _check(entry)]
    if failed:
        print(f"FAIL: tiers below the {SPEEDUP_FLOOR}x floor: {failed}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
